/**
 * @file
 * Minimal gem5-flavoured logging: panic/fatal for errors, plus a per-flag
 * trace facility used to narrate bus and cache activity.  Scenario
 * reproduction (Figures 1-9) records trace lines through the same channel,
 * so the narration printed by the figure benches is the narration the
 * simulator actually executed.
 */

#ifndef CSYNC_SIM_LOGGING_HH
#define CSYNC_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

namespace csync
{

/** Trace categories that can be enabled independently. */
enum class TraceFlag : unsigned
{
    Bus = 0,
    Cache,
    Protocol,
    Lock,
    Processor,
    Memory,
    Checker,
    NumFlags
};

/** Return a human-readable name for a trace flag. */
const char *traceFlagName(TraceFlag flag);

/**
 * Global trace sink.  By default traces are dropped; tests and the figure
 * benches install a capture callback, and examples enable stdout echo.
 *
 * Concurrency: the global sink/echo path is serialized with a mutex so
 * trace lines from different threads never interleave mid-line.  A
 * thread can additionally claim its output entirely for itself with
 * setThreadSink(): while a thread-local sink is installed, that thread's
 * emissions go only to it (no echo, no global sink, no lock), which is
 * how parallel campaign jobs keep concurrent System instances from
 * racing on the shared channel.  Flag configuration (setEnabled /
 * enableAll / reset) is not synchronized and must happen while no other
 * thread is emitting.
 */
class Trace
{
  public:
    using Sink = std::function<void(std::uint64_t when, TraceFlag flag,
                                    const std::string &who,
                                    const std::string &what)>;

    /** Enable or disable one category. */
    static void setEnabled(TraceFlag flag, bool on);

    /** True if the category is enabled (cheap inline check). */
    static bool enabled(TraceFlag flag) { return flags_[unsigned(flag)]; }

    /** Enable every category. */
    static void enableAll();

    /** Disable every category and remove the sink. */
    static void reset();

    /** Install a callback receiving every emitted trace line. */
    static void setSink(Sink sink);

    /**
     * Install a sink private to the calling thread.  While set, this
     * thread's emissions bypass the global sink and echo entirely.
     * Pass nullptr to restore the global path.
     */
    static void setThreadSink(Sink sink);

    /** Echo enabled trace lines to stdout as well. */
    static void setEcho(bool echo);

    /** Emit one trace record (no-op unless the flag is enabled). */
    static void emit(std::uint64_t when, TraceFlag flag,
                     const std::string &who, const std::string &what);

  private:
    static bool flags_[unsigned(TraceFlag::NumFlags)];
    static Sink sink_;
    static bool echo_;
    static thread_local Sink threadSink_;
};

/**
 * RAII guard that isolates the calling thread's trace output into a
 * caller-provided sink (or swallows it when @p sink is nullptr) for the
 * guard's lifetime.  Used by the campaign runner's worker threads.
 */
class ScopedThreadTrace
{
  public:
    explicit ScopedThreadTrace(Trace::Sink sink);
    ~ScopedThreadTrace();

    ScopedThreadTrace(const ScopedThreadTrace &) = delete;
    ScopedThreadTrace &operator=(const ScopedThreadTrace &) = delete;
};

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Thrown instead of exiting when the calling thread is inside a
 * ScopedFatalThrow region.  Carries the fatal() message.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard switching fatal() on the calling thread from exit(1) to
 * throwing FatalError.  Lets embedders (the campaign runner, tests of
 * rejection paths) survive an unusable configuration: the job that hit
 * it fails, the process does not.  panic() still aborts — an internal
 * simulator bug is never recoverable.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();

    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;

    /** True if the calling thread currently converts fatal() to throw. */
    static bool active();

  private:
    bool prev_;
};

/**
 * Abort the program: an internal simulator bug (never the user's fault).
 */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &m);

/**
 * Exit the program — or throw FatalError under ScopedFatalThrow: an
 * unusable configuration (the user's fault).
 */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &m);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

} // namespace csync

#define panic(...) \
    ::csync::panicImpl(__FILE__, __LINE__, ::csync::csprintf(__VA_ARGS__))

#define fatal(...) \
    ::csync::fatalImpl(__FILE__, __LINE__, ::csync::csprintf(__VA_ARGS__))

/** Assert a simulator invariant, panicking with a message on failure. */
#define sim_assert(cond, ...) \
    do { \
        if (!(cond)) \
            panic("assertion '%s' failed: %s", #cond, \
                  ::csync::csprintf(__VA_ARGS__).c_str()); \
    } while (0)

#endif // CSYNC_SIM_LOGGING_HH
