#include "sim/random.hh"

namespace csync
{

std::uint64_t
Random::geometric(double p, std::uint64_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    std::uint64_t n = 0;
    while (n < cap && !chance(p))
        ++n;
    return n;
}

} // namespace csync
