/**
 * @file
 * Deterministic pseudo-random source.  A thin wrapper over a 64-bit
 * xorshift* generator so results are reproducible across standard-library
 * implementations (std::mt19937 distributions are not portable).
 */

#ifndef CSYNC_SIM_RANDOM_HH
#define CSYNC_SIM_RANDOM_HH

#include <cstdint>

#include "sim/logging.hh"

namespace csync
{

/**
 * xorshift64* PRNG with helper draws used by the workload generators.
 */
class Random
{
  public:
    /** @param seed Any value; zero is remapped to a fixed odd constant. */
    explicit Random(std::uint64_t seed = 1)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        sim_assert(bound > 0, "uniform(0)");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        sim_assert(lo <= hi, "range(%llu, %llu)", (unsigned long long)lo,
                   (unsigned long long)hi);
        return lo + uniform(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p) { return uniformReal() < p; }

    /**
     * Geometric draw: number of failures before the first success with
     * per-trial probability @p p, capped at @p cap.
     */
    std::uint64_t geometric(double p, std::uint64_t cap = 1u << 20);

  private:
    std::uint64_t state_;
};

} // namespace csync

#endif // CSYNC_SIM_RANDOM_HH
