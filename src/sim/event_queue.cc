#include "sim/event_queue.hh"

namespace csync
{

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && events_.top().when <= until) {
        Entry e = std::move(const_cast<Entry &>(events_.top()));
        events_.pop();
        now_ = e.when;
        e.cb();
        ++executed;
        ++executed_;
    }
    if (now_ < until && until != maxTick)
        now_ = until;
    return executed;
}

std::uint64_t
EventQueue::runSteps(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && executed < max_events) {
        Entry e = std::move(const_cast<Entry &>(events_.top()));
        events_.pop();
        now_ = e.when;
        e.cb();
        ++executed;
        ++executed_;
    }
    return executed;
}

void
EventQueue::reset()
{
    while (!events_.empty())
        events_.pop();
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
}

} // namespace csync
