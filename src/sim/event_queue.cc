#include "sim/event_queue.hh"

namespace csync
{

EventQueue::Node *
EventQueue::allocNode()
{
    if (!freeList_) {
        constexpr std::size_t chunkNodes = 64;
        chunks_.push_back(std::make_unique<Node[]>(chunkNodes));
        Node *chunk = chunks_.back().get();
        for (std::size_t i = chunkNodes; i-- > 0;)
            freeNode(&chunk[i]);
    }
    Node *n = freeList_;
    freeList_ = n->nextFree;
    return n;
}

void
EventQueue::siftUp(std::size_t i)
{
    HeapEntry e = heap_[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!e.before(heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    HeapEntry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap_[child + 1].before(heap_[child]))
            ++child;
        if (!heap_[child].before(e))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = e;
}

EventCallback
EventQueue::popTop()
{
    Node *n = heap_[0].node;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    // Move the callback out and recycle the node *before* invoking: the
    // callback may schedule new events, which may legally reuse this node.
    EventCallback cb = std::move(n->cb);
    freeNode(n);
    return cb;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_[0].when <= until) {
        now_ = heap_[0].when;
        EventCallback cb = popTop();
        cb();
        ++executed;
        ++executed_;
    }
    if (now_ < until && until != maxTick)
        now_ = until;
    return executed;
}

std::uint64_t
EventQueue::runSteps(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && executed < max_events) {
        now_ = heap_[0].when;
        EventCallback cb = popTop();
        cb();
        ++executed;
        ++executed_;
    }
    return executed;
}

std::uint64_t
EventQueue::runBounded(Tick until, std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_[0].when <= until &&
           executed < max_events) {
        now_ = heap_[0].when;
        EventCallback cb = popTop();
        cb();
        ++executed;
        ++executed_;
    }
    return executed;
}

void
EventQueue::reset()
{
    for (auto &e : heap_) {
        e.node->cb.reset();
        freeNode(e.node);
    }
    heap_.clear();
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
}

} // namespace csync
