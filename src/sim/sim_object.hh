/**
 * @file
 * Base class for named simulation components.  A SimObject knows its name
 * and the event queue of the system it belongs to, and offers convenience
 * tracing helpers.
 */

#ifndef CSYNC_SIM_SIM_OBJECT_HH
#define CSYNC_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace csync
{

/**
 * A named component attached to an event queue.
 */
class SimObject
{
  public:
    /**
     * @param name Hierarchical instance name (e.g. "cache2").
     * @param eq Event queue the component schedules on (not owned).
     */
    SimObject(std::string name, EventQueue *eq)
        : name_(std::move(name)), eventq_(eq)
    {
        sim_assert(eventq_ != nullptr, "SimObject '%s' needs an event queue",
                   name_.c_str());
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Instance name. */
    const std::string &name() const { return name_; }

    /** Event queue this object schedules on. */
    EventQueue *eventq() const { return eventq_; }

    /** Current simulated time. */
    Tick curTick() const { return eventq_->now(); }

    /**
     * Point this object at a different event queue.  Only legal before
     * any event involving the object is scheduled — the sharded
     * parallel engine calls this at System::start() to move a whole
     * interconnect domain onto its own queue; nothing may rebind a
     * running object.
     */
    void
    rebind(EventQueue *eq)
    {
        sim_assert(eq != nullptr, "SimObject '%s' rebind to null queue",
                   name_.c_str());
        eventq_ = eq;
    }

  protected:
    /** Emit a trace line attributed to this object. */
    void
    trace(TraceFlag flag, const std::string &what) const
    {
        if (Trace::enabled(flag))
            Trace::emit(curTick(), flag, name_, what);
    }

    /**
     * Emit a printf-formatted trace line.  The format call only happens
     * when the flag is enabled, so narration in hot paths costs one
     * predictable branch when tracing is off.
     */
    template <typename... Args>
    void
    trace(TraceFlag flag, const char *fmt, Args... args) const
    {
        if (Trace::enabled(flag))
            Trace::emit(curTick(), flag, name_, csprintf(fmt, args...));
    }

  private:
    std::string name_;
    EventQueue *eventq_;
};

} // namespace csync

#endif // CSYNC_SIM_SIM_OBJECT_HH
