/**
 * @file
 * Fundamental scalar types shared by every subsystem of the simulator.
 */

#ifndef CSYNC_SIM_TYPES_HH
#define CSYNC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace csync
{

/** Simulated time, measured in bus-clock cycles. */
using Tick = std::uint64_t;

/** A tick value that is later than any reachable simulation time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Contents of one bus-wide word (the unit of data transfer). */
using Word = std::uint64_t;

/** Identifier of a cache/processor pair on the bus. -1 == memory/none. */
using NodeId = int;

/** NodeId naming "no cache" (e.g. data supplied by main memory). */
constexpr NodeId invalidNode = -1;

/** Number of bytes in one bus-wide word. */
constexpr Addr bytesPerWord = 8;

/** Align an address down to its containing word. */
constexpr Addr
wordAlign(Addr a)
{
    return a & ~(bytesPerWord - 1);
}

} // namespace csync

#endif // CSYNC_SIM_TYPES_HH
