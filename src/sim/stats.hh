/**
 * @file
 * Small statistics package in the spirit of gem5's: named scalars,
 * histograms and derived formulas registered into groups that can be
 * dumped as aligned text tables.  Every subsystem exposes its counters
 * through this so benches can print paper-style rows.
 */

#ifndef CSYNC_SIM_STATS_HH
#define CSYNC_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace csync
{
namespace stats
{

class Group;

/** Concrete statistic kind, for dispatch without RTTI on the hot
 *  serialization/lookup paths. */
enum class Kind
{
    Scalar,
    Histogram,
    Formula
};

/** Common base: a named, described statistic belonging to a group. */
class Info
{
  public:
    Info(Group *parent, std::string name, std::string desc, Kind kind);
    virtual ~Info() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    Kind kind() const { return kind_; }

    /** Render the value(s) into one or more "name value # desc" lines. */
    virtual void print(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset to the freshly-constructed value. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
    Kind kind_;
};

/** A double-valued counter/accumulator. */
class Scalar : public Info
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc), Kind::Scalar)
    {
    }

    Scalar &operator++() { value_ += 1; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** A fixed-bucket histogram with underflow/overflow and moments. */
class Histogram : public Info
{
  public:
    /**
     * @param parent Owning group.
     * @param name Statistic name.
     * @param desc Description.
     * @param bucket_size Width of each bucket.
     * @param buckets Number of buckets starting at zero.
     */
    Histogram(Group *parent, std::string name, std::string desc,
              std::uint64_t bucket_size, std::size_t buckets);

    /**
     * Record one sample.  The hot path is branch-light: min/max update
     * via conditional moves, and power-of-two bucket sizes (the common
     * case) index with a shift instead of a 64-bit division.
     */
    void
    sample(std::uint64_t value)
    {
        std::size_t idx = shift_ ? std::size_t(value >> shift_)
                                 : std::size_t(value / bucketSize_);
        if (idx < buckets_.size())
            ++buckets_[idx];
        else
            ++overflow_;
        min_ = value < min_ ? value : min_;
        max_ = value > max_ ? value : max_;
        ++count_;
        sum_ += double(value);
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t bucketSize() const { return bucketSize_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::uint64_t bucketSize_;
    /** log2(bucketSize_) when it is a power of two, else 0 (divide). */
    unsigned shift_ = 0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    /** Starts at max so sample() can take an unconditional min. */
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/** A lazily evaluated derived value (e.g. a ratio of two scalars). */
class Formula : public Info
{
  public:
    using Fn = std::function<double()>;

    Formula(Group *parent, std::string name, std::string desc, Fn fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    Fn fn_;
};

/**
 * A named collection of statistics, possibly with child groups, mirroring
 * the SimObject hierarchy.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    virtual ~Group() = default;

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &groupName() const { return name_; }

    /** Register a statistic (called by Info's constructor). */
    void addStat(Info *info);

    /** Register a child group. */
    void addChild(Group *child);

    /** Dump this group and all children to @p os. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset this group's stats and all children. */
    void resetStats();

    /** Look up a scalar/formula value by dotted path; 0 if absent. */
    double lookup(const std::string &stat_name) const;

    /** Registered statistics, in registration order (serializers). */
    const std::vector<Info *> &statsList() const { return stats_; }

    /** Child groups, in registration order (serializers). */
    const std::vector<Group *> &childGroups() const { return children_; }

  private:
    std::string name_;
    std::vector<Info *> stats_;
    std::vector<Group *> children_;
};

} // namespace stats
} // namespace csync

#endif // CSYNC_SIM_STATS_HH
