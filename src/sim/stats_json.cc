#include "sim/stats_json.hh"

#include <cmath>
#include <cstdio>

namespace csync
{
namespace stats
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integers (the overwhelmingly common case for counters) print
    // exactly; anything fractional gets round-trip precision.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace
{

std::string
pad(int indent)
{
    return std::string(std::size_t(indent), ' ');
}

void
dumpHistogram(const Histogram &h, std::ostream &os, int indent)
{
    std::string in = pad(indent + 2);
    os << "{\n";
    os << in << "\"count\": " << jsonNumber(double(h.count())) << ",\n";
    os << in << "\"mean\": " << jsonNumber(h.mean()) << ",\n";
    os << in << "\"min\": " << jsonNumber(double(h.min())) << ",\n";
    os << in << "\"max\": " << jsonNumber(double(h.max())) << ",\n";
    os << in << "\"bucket_size\": " << jsonNumber(double(h.bucketSize()))
       << ",\n";
    os << in << "\"buckets\": {";
    bool first = true;
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        if (h.buckets()[i] == 0)
            continue;
        os << (first ? "" : ", ") << "\"" << i
           << "\": " << jsonNumber(double(h.buckets()[i]));
        first = false;
    }
    os << "},\n";
    os << in << "\"overflow\": " << jsonNumber(double(h.overflow()))
       << "\n";
    os << pad(indent) << "}";
}

void
dumpGroupBody(const Group &g, std::ostream &os, int indent)
{
    std::string in = pad(indent + 2);
    os << "{";
    bool first = true;
    auto sep = [&]() {
        os << (first ? "\n" : ",\n") << in;
        first = false;
    };
    for (const Info *s : g.statsList()) {
        sep();
        os << "\"" << jsonEscape(s->name()) << "\": ";
        switch (s->kind()) {
          case Kind::Scalar:
            os << jsonNumber(static_cast<const Scalar *>(s)->value());
            break;
          case Kind::Formula:
            os << jsonNumber(static_cast<const Formula *>(s)->value());
            break;
          case Kind::Histogram:
            dumpHistogram(*static_cast<const Histogram *>(s), os,
                          indent + 2);
            break;
        }
    }
    for (const Group *c : g.childGroups()) {
        sep();
        os << "\"" << jsonEscape(c->groupName()) << "\": ";
        dumpGroupBody(*c, os, indent + 2);
    }
    if (!first)
        os << "\n" << pad(indent);
    os << "}";
}

} // anonymous namespace

void
dumpJson(const Group &g, std::ostream &os, int indent)
{
    os << pad(indent) << "{\n"
       << pad(indent + 2) << "\"" << jsonEscape(g.groupName()) << "\": ";
    dumpGroupBody(g, os, indent + 2);
    os << "\n" << pad(indent) << "}\n";
}

void
flatten(const Group &g, std::map<std::string, double> &out,
        const std::string &prefix)
{
    std::string p = prefix.empty() ? g.groupName() + "."
                                   : prefix + g.groupName() + ".";
    for (const Info *s : g.statsList()) {
        const std::string base = p + s->name();
        switch (s->kind()) {
          case Kind::Scalar:
            out[base] = static_cast<const Scalar *>(s)->value();
            break;
          case Kind::Formula:
            out[base] = static_cast<const Formula *>(s)->value();
            break;
          case Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(s);
            out[base + ".count"] = double(h->count());
            out[base + ".mean"] = h->mean();
            out[base + ".min"] = double(h->min());
            out[base + ".max"] = double(h->max());
            for (std::size_t i = 0; i < h->buckets().size(); ++i) {
                if (h->buckets()[i])
                    out[base + ".bucket" + std::to_string(i)] =
                        double(h->buckets()[i]);
            }
            if (h->overflow())
                out[base + ".overflow"] = double(h->overflow());
            break;
          }
        }
    }
    for (const Group *c : g.childGroups())
        flatten(*c, out, p);
}

} // namespace stats
} // namespace csync
