#include "sim/sim_object.hh"

// SimObject is header-only today; this translation unit anchors the vtable.

namespace csync
{
} // namespace csync
