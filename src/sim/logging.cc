#include "sim/logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

namespace csync
{

bool Trace::flags_[unsigned(TraceFlag::NumFlags)] = {};
Trace::Sink Trace::sink_;
bool Trace::echo_ = false;
thread_local Trace::Sink Trace::threadSink_;

namespace
{

/** Serializes the global echo/sink path across threads. */
std::mutex &
traceMutex()
{
    static std::mutex m;
    return m;
}

thread_local bool fatalThrows = false;

} // anonymous namespace

const char *
traceFlagName(TraceFlag flag)
{
    switch (flag) {
      case TraceFlag::Bus: return "Bus";
      case TraceFlag::Cache: return "Cache";
      case TraceFlag::Protocol: return "Protocol";
      case TraceFlag::Lock: return "Lock";
      case TraceFlag::Processor: return "Processor";
      case TraceFlag::Memory: return "Memory";
      case TraceFlag::Checker: return "Checker";
      default: return "Unknown";
    }
}

void
Trace::setEnabled(TraceFlag flag, bool on)
{
    flags_[unsigned(flag)] = on;
}

void
Trace::enableAll()
{
    for (auto &f : flags_)
        f = true;
}

void
Trace::reset()
{
    for (auto &f : flags_)
        f = false;
    sink_ = nullptr;
    echo_ = false;
}

void
Trace::setSink(Sink sink)
{
    sink_ = std::move(sink);
}

void
Trace::setThreadSink(Sink sink)
{
    threadSink_ = std::move(sink);
}

void
Trace::setEcho(bool echo)
{
    echo_ = echo;
}

void
Trace::emit(std::uint64_t when, TraceFlag flag, const std::string &who,
            const std::string &what)
{
    if (!enabled(flag))
        return;
    if (threadSink_) {
        threadSink_(when, flag, who, what);
        return;
    }
    std::lock_guard<std::mutex> lock(traceMutex());
    if (echo_) {
        std::fprintf(stdout, "%8llu: %-9s %-14s %s\n",
                     (unsigned long long)when, traceFlagName(flag),
                     who.c_str(), what.c_str());
    }
    if (sink_)
        sink_(when, flag, who, what);
}

ScopedThreadTrace::ScopedThreadTrace(Trace::Sink sink)
{
    if (!sink) {
        // Swallow: a non-null sink that drops everything still diverts
        // this thread away from the shared global channel.
        sink = [](std::uint64_t, TraceFlag, const std::string &,
                  const std::string &) {};
    }
    Trace::setThreadSink(std::move(sink));
}

ScopedThreadTrace::~ScopedThreadTrace()
{
    Trace::setThreadSink(nullptr);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::vector<char> buf(n + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), n);
}

void
panicImpl(const char *file, int line, const std::string &m)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", m.c_str(), file, line);
    std::abort();
}

ScopedFatalThrow::ScopedFatalThrow() : prev_(fatalThrows)
{
    fatalThrows = true;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    fatalThrows = prev_;
}

bool
ScopedFatalThrow::active()
{
    return fatalThrows;
}

void
fatalImpl(const char *file, int line, const std::string &m)
{
    if (fatalThrows)
        throw FatalError(m);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", m.c_str(), file, line);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace csync
