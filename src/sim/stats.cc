#include "sim/stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace csync
{
namespace stats
{

Info::Info(Group *parent, std::string name, std::string desc, Kind kind)
    : name_(std::move(name)), desc_(std::move(desc)), kind_(kind)
{
    sim_assert(parent != nullptr, "stat '%s' has no group", name_.c_str());
    parent->addStat(this);
}

namespace
{

void
printLine(std::ostream &os, const std::string &key, double value,
          const std::string &desc)
{
    os << std::left << std::setw(44) << key << " " << std::right
       << std::setw(14) << std::setprecision(6) << value << "  # " << desc
       << "\n";
}

} // anonymous namespace

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), value_, desc());
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     std::uint64_t bucket_size, std::size_t buckets)
    : Info(parent, std::move(name), std::move(desc), Kind::Histogram),
      bucketSize_(bucket_size), buckets_(buckets, 0)
{
    sim_assert(bucket_size > 0, "histogram bucket size must be positive");
    if ((bucket_size & (bucket_size - 1)) == 0) {
        while ((std::uint64_t(1) << shift_) < bucket_size)
            ++shift_;
    }
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name() + ".count", double(count_), desc());
    printLine(os, prefix + name() + ".mean", mean(), "sample mean");
    printLine(os, prefix + name() + ".min", double(min()), "minimum");
    printLine(os, prefix + name() + ".max", double(max_), "maximum");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        printLine(os,
                  prefix + name() + ".bucket" + std::to_string(i),
                  double(buckets_[i]),
                  "[" + std::to_string(i * bucketSize_) + ", " +
                      std::to_string((i + 1) * bucketSize_) + ")");
    }
    if (overflow_)
        printLine(os, prefix + name() + ".overflow", double(overflow_),
                  "samples above last bucket");
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t(0);
    max_ = 0;
}

Formula::Formula(Group *parent, std::string name, std::string desc, Fn fn)
    : Info(parent, std::move(name), std::move(desc), Kind::Formula),
      fn_(std::move(fn))
{
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), value(), desc());
}

Group::Group(std::string name, Group *parent) : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
Group::addStat(Info *info)
{
    stats_.push_back(info);
}

void
Group::addChild(Group *child)
{
    children_.push_back(child);
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string p = prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const auto *s : stats_)
        s->print(os, p);
    for (const auto *c : children_)
        c->dump(os, p);
}

void
Group::resetStats()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetStats();
}

double
Group::lookup(const std::string &stat_name) const
{
    auto dot = stat_name.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : stats_) {
            if (s->name() == stat_name) {
                switch (s->kind()) {
                  case Kind::Scalar:
                    return static_cast<const Scalar *>(s)->value();
                  case Kind::Formula:
                    return static_cast<const Formula *>(s)->value();
                  case Kind::Histogram:
                    return double(
                        static_cast<const Histogram *>(s)->count());
                }
            }
        }
        return 0.0;
    }
    std::string head = stat_name.substr(0, dot);
    std::string tail = stat_name.substr(dot + 1);
    for (const auto *c : children_) {
        if (c->groupName() == head)
            return c->lookup(tail);
    }
    return 0.0;
}

} // namespace stats
} // namespace csync
