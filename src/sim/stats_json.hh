/**
 * @file
 * JSON export for the statistics hierarchy — the machine-readable twin
 * of stats::Group::dump().  No external dependencies: a self-contained
 * writer emitting a deterministic document (registration order, fixed
 * number formatting) so two runs of the same configuration produce
 * byte-identical output, which is what campaign diffing relies on.
 */

#ifndef CSYNC_SIM_STATS_JSON_HH
#define CSYNC_SIM_STATS_JSON_HH

#include <map>
#include <ostream>
#include <string>

#include "sim/stats.hh"

namespace csync
{
namespace stats
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Format @p v the way every csync JSON document does: integral values
 * as integers, everything else with enough digits to round-trip a
 * double exactly.  NaN/inf (illegal in JSON) are emitted as null.
 */
std::string jsonNumber(double v);

/**
 * Dump @p g as a nested JSON object mirroring the group hierarchy.
 * Scalars and formulas become numbers; histograms become objects with
 * count/mean/min/max and a sparse "buckets" map.
 *
 * @param indent Spaces of indentation for the opening brace's content;
 *               the document is pretty-printed with two-space steps.
 */
void dumpJson(const Group &g, std::ostream &os, int indent = 0);

/**
 * Flatten @p g into dotted-path → value rows ("system.cache0.accesses"
 * → 123).  Histograms contribute .count/.mean/.min/.max rows plus one
 * .bucketN row per populated bucket.  This is the representation
 * campaign files store and the comparison gate diffs.
 */
void flatten(const Group &g, std::map<std::string, double> &out,
             const std::string &prefix = "");

} // namespace stats
} // namespace csync

#endif // CSYNC_SIM_STATS_JSON_HH
