/**
 * @file
 * Measured performance: a steady-clock benchmark harness (warmup,
 * repetitions, median-of-N) plus the schema-versioned JSON document the
 * `csync-bench` CLI emits (`BENCH_*.json`) and the comparison gate that
 * turns a committed baseline into a machine-checkable perf regression
 * test.
 *
 * The comparison normalizes through an optional "calibration" kernel —
 * a fixed amount of pure CPU work — so a baseline recorded on one
 * machine is meaningful on another: every simulator kernel is compared
 * as a ratio to the calibration throughput of its own run, and only a
 * relative slowdown beyond the tolerance fails the gate.
 */

#ifndef CSYNC_PERF_BENCH_HARNESS_HH
#define CSYNC_PERF_BENCH_HARNESS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/json.hh"

namespace csync
{
namespace perf
{

/** Current bench document version ("csync_bench"). */
constexpr int kBenchVersion = 1;

/** Repetition knobs. */
struct BenchOptions
{
    /** Untimed warmup repetitions before measurement. */
    unsigned warmup = 1;
    /** Timed repetitions; the reported time is their median. */
    unsigned reps = 5;
};

/** One measured kernel. */
struct KernelResult
{
    std::string name;
    /** @name Workload-kernel echo ("" / 0 for synthetic kernels) */
    /// @{
    std::string protocol;
    std::string workload;
    unsigned procs = 0;
    /// @}

    /** Operations performed by one repetition. */
    std::uint64_t opsPerRep = 0;
    /** Timed repetitions measured. */
    unsigned reps = 0;
    /** Median / fastest / slowest repetition wall time, milliseconds. */
    double medianMs = 0;
    double minMs = 0;
    double maxMs = 0;
    /** Throughput at the median repetition. */
    double opsPerSec = 0;
    /** Nanoseconds per operation at the median repetition. */
    double nsPerOp = 0;
    /**
     * Deterministic simulator statistics the kernel chose to record
     * (e.g. root-bus transactions of the snoop-filter pair): identical
     * every repetition, serialized only when non-empty, and never
     * gated by the comparison — they document *why* a kernel's cost
     * moved, not how fast the host ran it.
     */
    std::map<std::string, double> stats;
};

/**
 * Runs kernels under a monotonic (steady) clock.  A kernel is a callable
 * that performs a deterministic amount of work and returns the number of
 * operations it executed; the harness never touches wall-clock time
 * sources that could go backwards.
 */
class BenchHarness
{
  public:
    /** @return the number of operations the repetition executed. */
    using KernelFn = std::function<std::uint64_t()>;

    /**
     * Measure @p fn: run it opts.warmup times untimed, then opts.reps
     * times timed, and report the median repetition.
     */
    KernelResult run(const std::string &name, const KernelFn &fn,
                     const BenchOptions &opts = {});
};

/** Median of @p v (by value: the input is sorted internally); 0 when
 *  empty.  Even-sized inputs average the two middle elements. */
double median(std::vector<double> v);

/** Peak resident set size of this process in kilobytes (0 where the
 *  platform offers no getrusage). */
std::uint64_t peakRssKb();

/**
 * Serialize a bench run as the versioned document:
 *
 *   { "csync_bench": 1, "name": ..., "mode": ..., "warmup": W,
 *     "reps": R, "peak_rss_kb": N, "kernels": [ ... ] }
 */
harness::Json benchToJson(const std::vector<KernelResult> &kernels,
                          const std::string &name,
                          const std::string &mode,
                          const BenchOptions &opts);

/**
 * Load the comparable portion of a bench document.
 * @return false with *err set if @p doc is not a bench document.
 */
bool benchFromJson(const harness::Json &doc,
                   std::vector<KernelResult> *out, std::string *err);

/** Name of the machine-speed normalization kernel. */
extern const char *const kCalibrationKernel;

/** Comparison knobs. */
struct BenchCompareOptions
{
    /** Allowed ops/sec regression per kernel, percent. */
    double maxRegressPct = 25.0;
};

/** Outcome of comparing two bench runs. */
struct BenchCompareReport
{
    /** True when no kernel regressed beyond tolerance. */
    bool ok = true;
    /** Kernels slower than baseline beyond tolerance. */
    unsigned regressed = 0;
    /** Baseline kernels absent from the candidate. */
    unsigned missing = 0;
    /** Kernels compared. */
    unsigned compared = 0;
    /** True when both runs had a calibration kernel to normalize by. */
    bool normalized = false;
    /** Human-readable report. */
    std::string text;
};

/**
 * Compare @p baseline against @p candidate kernel by kernel on ops/sec.
 * When both contain the calibration kernel, throughputs are normalized
 * by it first (cross-machine comparison); the calibration kernel itself
 * is never gated.
 */
BenchCompareReport compareBench(const std::vector<KernelResult> &baseline,
                                const std::vector<KernelResult> &candidate,
                                const BenchCompareOptions &opts = {});

} // namespace perf
} // namespace csync

#endif // CSYNC_PERF_BENCH_HARNESS_HH
