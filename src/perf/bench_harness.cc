#include "perf/bench_harness.hh"

#include <algorithm>
#include <chrono>

#include "sim/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace csync
{
namespace perf
{

const char *const kCalibrationKernel = "calibration";

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t mid = v.size() / 2;
    if (v.size() % 2)
        return v[mid];
    return (v[mid - 1] + v[mid]) / 2.0;
}

std::uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return std::uint64_t(ru.ru_maxrss) / 1024; // bytes on Darwin
#else
    return std::uint64_t(ru.ru_maxrss); // kilobytes on Linux
#endif
#else
    return 0;
#endif
}

KernelResult
BenchHarness::run(const std::string &name, const KernelFn &fn,
                  const BenchOptions &opts)
{
    using clock = std::chrono::steady_clock;

    KernelResult r;
    r.name = name;
    r.reps = opts.reps ? opts.reps : 1;

    for (unsigned i = 0; i < opts.warmup; ++i)
        r.opsPerRep = fn();

    std::vector<double> ms;
    ms.reserve(r.reps);
    for (unsigned i = 0; i < r.reps; ++i) {
        auto t0 = clock::now();
        r.opsPerRep = fn();
        auto t1 = clock::now();
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }

    r.medianMs = median(ms);
    r.minMs = *std::min_element(ms.begin(), ms.end());
    r.maxMs = *std::max_element(ms.begin(), ms.end());
    if (r.medianMs > 0 && r.opsPerRep > 0) {
        r.opsPerSec = double(r.opsPerRep) / (r.medianMs / 1e3);
        r.nsPerOp = r.medianMs * 1e6 / double(r.opsPerRep);
    }
    return r;
}

harness::Json
benchToJson(const std::vector<KernelResult> &kernels,
            const std::string &name, const std::string &mode,
            const BenchOptions &opts)
{
    using harness::Json;
    Json doc = Json::object();
    doc.set("csync_bench", kBenchVersion);
    doc.set("name", name);
    doc.set("mode", mode);
    doc.set("warmup", opts.warmup);
    doc.set("reps", opts.reps);
    doc.set("peak_rss_kb", peakRssKb());
    Json arr = Json::array();
    for (const auto &k : kernels) {
        Json row = Json::object();
        row.set("name", k.name);
        if (!k.protocol.empty())
            row.set("protocol", k.protocol);
        if (!k.workload.empty())
            row.set("workload", k.workload);
        if (k.procs)
            row.set("procs", k.procs);
        row.set("ops_per_rep", k.opsPerRep);
        row.set("reps", k.reps);
        row.set("median_ms", k.medianMs);
        row.set("min_ms", k.minMs);
        row.set("max_ms", k.maxMs);
        row.set("ops_per_sec", k.opsPerSec);
        row.set("ns_per_op", k.nsPerOp);
        if (!k.stats.empty()) {
            Json stats = Json::object();
            for (const auto &kv : k.stats)
                stats.set(kv.first, kv.second);
            row.set("stats", std::move(stats));
        }
        arr.push(std::move(row));
    }
    doc.set("kernels", std::move(arr));
    return doc;
}

bool
benchFromJson(const harness::Json &doc, std::vector<KernelResult> *out,
              std::string *err)
{
    out->clear();
    if (!doc.isObject() || !doc.has("csync_bench")) {
        *err = "not a csync bench document (no \"csync_bench\" key)";
        return false;
    }
    int version = int(doc["csync_bench"].asNumber());
    if (version != kBenchVersion) {
        *err = csprintf("unsupported bench document version %d "
                        "(expected %d)", version, kBenchVersion);
        return false;
    }
    const harness::Json &kernels = doc["kernels"];
    if (!kernels.isArray()) {
        *err = "bench document has no \"kernels\" array";
        return false;
    }
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const harness::Json &row = kernels.at(i);
        if (!row.isObject() || !row.has("name") ||
            !row.has("ops_per_sec")) {
            *err = csprintf("kernel %zu: missing \"name\" or "
                            "\"ops_per_sec\"", i);
            return false;
        }
        KernelResult k;
        k.name = row["name"].asString();
        k.protocol = row["protocol"].isString()
                         ? row["protocol"].asString() : "";
        k.workload = row["workload"].isString()
                         ? row["workload"].asString() : "";
        k.procs = unsigned(row["procs"].asNumber());
        k.opsPerRep = std::uint64_t(row["ops_per_rep"].asNumber());
        k.reps = unsigned(row["reps"].asNumber());
        k.medianMs = row["median_ms"].asNumber();
        k.minMs = row["min_ms"].asNumber();
        k.maxMs = row["max_ms"].asNumber();
        k.opsPerSec = row["ops_per_sec"].asNumber();
        k.nsPerOp = row["ns_per_op"].asNumber();
        for (const auto &kv : row["stats"].members())
            k.stats[kv.first] = kv.second.asNumber();
        out->push_back(std::move(k));
    }
    return true;
}

namespace
{

const KernelResult *
findKernel(const std::vector<KernelResult> &v, const std::string &name)
{
    for (const auto &k : v)
        if (k.name == name)
            return &k;
    return nullptr;
}

} // anonymous namespace

BenchCompareReport
compareBench(const std::vector<KernelResult> &baseline,
             const std::vector<KernelResult> &candidate,
             const BenchCompareOptions &opts)
{
    BenchCompareReport rep;
    std::string &t = rep.text;

    // Machine-speed normalization: when both runs measured the
    // calibration kernel, judge each simulator kernel by its throughput
    // relative to its own run's calibration throughput.
    double scale = 1.0;
    const KernelResult *oldCal = findKernel(baseline, kCalibrationKernel);
    const KernelResult *newCal = findKernel(candidate, kCalibrationKernel);
    if (oldCal && newCal && oldCal->opsPerSec > 0 &&
        newCal->opsPerSec > 0) {
        scale = newCal->opsPerSec / oldCal->opsPerSec;
        rep.normalized = true;
        t += csprintf("calibration: baseline %.3g ops/s, candidate "
                      "%.3g ops/s -> machine scale %.3f\n",
                      oldCal->opsPerSec, newCal->opsPerSec, scale);
    }

    for (const auto &b : baseline) {
        if (b.name == kCalibrationKernel)
            continue;
        const KernelResult *c = findKernel(candidate, b.name);
        if (!c) {
            ++rep.missing;
            rep.ok = false;
            t += csprintf("MISSING %-32s not in candidate\n",
                          b.name.c_str());
            continue;
        }
        ++rep.compared;
        double expected = b.opsPerSec * scale;
        double floor = expected * (1.0 - opts.maxRegressPct / 100.0);
        double delta = expected > 0
                           ? (c->opsPerSec - expected) / expected * 100.0
                           : 0.0;
        if (c->opsPerSec < floor) {
            ++rep.regressed;
            rep.ok = false;
            t += csprintf("REGRESS %-32s %.3g -> %.3g ops/s "
                          "(%+.1f%%, tolerance -%.1f%%)\n",
                          b.name.c_str(), expected, c->opsPerSec, delta,
                          opts.maxRegressPct);
        } else {
            t += csprintf("ok      %-32s %.3g -> %.3g ops/s (%+.1f%%)\n",
                          b.name.c_str(), expected, c->opsPerSec, delta);
        }
    }

    t += csprintf("compared %u kernels%s: %u regressed beyond %.1f%%, "
                  "%u missing -> %s\n", rep.compared,
                  rep.normalized ? " (calibration-normalized)" : "",
                  rep.regressed, opts.maxRegressPct, rep.missing,
                  rep.ok ? "OK" : "FAIL");
    return rep;
}

} // namespace perf
} // namespace csync
