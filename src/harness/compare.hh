/**
 * @file
 * The campaign regression gate: diff two campaign documents stat by
 * stat and fail on drift beyond a relative tolerance.  This is what
 * turns campaign JSON files into machine-checkable golden results —
 * CI runs a fresh campaign and compares it against the committed one.
 *
 * Host-dependent fields (wall clock, host throughput) are never
 * compared; everything the simulator itself computed is.
 */

#ifndef CSYNC_HARNESS_COMPARE_HH
#define CSYNC_HARNESS_COMPARE_HH

#include <string>

#include "harness/campaign.hh"

namespace csync
{
namespace harness
{

/** Comparison knobs. */
struct CompareOptions
{
    /** Allowed relative drift per stat, in percent (0 = exact). */
    double tolerancePct = 0.0;
    /** Maximum detail lines in the report text. */
    unsigned maxReportLines = 40;
};

/** Outcome of comparing two campaigns. */
struct CompareReport
{
    /** True when nothing drifted beyond tolerance. */
    bool ok = true;
    /** Stats beyond tolerance. */
    unsigned drifted = 0;
    /** Rows/stats present in one campaign but not the other. */
    unsigned missing = 0;
    /** Rows whose status changed (ok -> error etc.). */
    unsigned statusChanges = 0;
    /** Stats compared in total. */
    unsigned compared = 0;
    /**
     * The first difference found, fully located: the row's job name,
     * the stat path (or field) that differs, and both values.  Empty
     * when ok.  Repeated in the summary so a golden regression names
     * its first offender even when the detail lines are suppressed.
     */
    std::string firstDiff;
    /** Human-readable diff report. */
    std::string text;
};

/**
 * Compare @p oldc (the reference) against @p newc (the candidate).
 */
CompareReport compareCampaigns(const CampaignResult &oldc,
                               const CampaignResult &newc,
                               const CompareOptions &opts = {});

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_COMPARE_HH
