#include "harness/runner_proc.hh"

#include "harness/campaign_io.hh"
#include "sim/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define CSYNC_HAVE_FORK 1
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define CSYNC_HAVE_FORK 0
#endif

namespace csync
{
namespace harness
{

bool
childIsolationSupported()
{
    return CSYNC_HAVE_FORK != 0;
}

#if CSYNC_HAVE_FORK

namespace
{

/** Cap kept from the child's stderr (the interesting part is the
 *  end: the abort message and its context). */
constexpr std::size_t kStderrTailBytes = 2048;

void
keepTail(std::string &buf)
{
    if (buf.size() > 2 * kStderrTailBytes)
        buf.erase(0, buf.size() - kStderrTailBytes);
}

void
writeAll(int fd, const std::string &s)
{
    std::size_t off = 0;
    while (off < s.size()) {
        ssize_t n = ::write(fd, s.data() + off, s.size() - off);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        off += std::size_t(n);
    }
}

} // anonymous namespace

JobResult
runJobInChild(const JobSpec &spec, double wall_deadline_ms)
{
    using clock = std::chrono::steady_clock;

    auto failRow = [&](const std::string &why) {
        JobResult r = rowForSpec(spec);
        r.status = "error";
        r.error = why;
        return r;
    };

    int result_pipe[2], stderr_pipe[2];
    if (::pipe(result_pipe) != 0)
        return failRow(csprintf("pipe: %s", std::strerror(errno)));
    if (::pipe(stderr_pipe) != 0) {
        ::close(result_pipe[0]);
        ::close(result_pipe[1]);
        return failRow(csprintf("pipe: %s", std::strerror(errno)));
    }

    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {result_pipe[0], result_pipe[1], stderr_pipe[0],
                       stderr_pipe[1]})
            ::close(fd);
        return failRow(csprintf("fork: %s", std::strerror(errno)));
    }

    if (pid == 0) {
        // Child: stderr goes to the capture pipe, the finished row
        // goes down the result pipe as one JSON line.  _exit (not
        // exit) so no parent-owned atexit state runs twice.
        ::dup2(stderr_pipe[1], 2);
        ::close(stderr_pipe[0]);
        ::close(stderr_pipe[1]);
        ::close(result_pipe[0]);
        JobResult r = CampaignRunner::runJob(spec);
        writeAll(result_pipe[1], rowToJson(r).dump(-1) + "\n");
        ::close(result_pipe[1]);
        ::_exit(0);
    }

    ::close(result_pipe[1]);
    ::close(stderr_pipe[1]);

    auto deadline = clock::now() +
                    std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            wall_deadline_ms));
    bool killed = false;
    std::string result_buf, stderr_buf;
    struct pollfd fds[2] = {{result_pipe[0], POLLIN, 0},
                            {stderr_pipe[0], POLLIN, 0}};
    int open_fds = 2;
    char chunk[4096];
    while (open_fds > 0) {
        int timeout = -1;
        if (wall_deadline_ms > 0 && !killed) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline -
                                                       clock::now())
                            .count();
            if (left <= 0) {
                ::kill(pid, SIGKILL);
                killed = true;
            } else {
                timeout = int(std::min<long long>(left, 100));
            }
        }
        int n = ::poll(fds, 2, timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            continue; // deadline check at loop top
        for (int i = 0; i < 2; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            ssize_t got = ::read(fds[i].fd, chunk, sizeof(chunk));
            if (got > 0) {
                std::string &buf = i == 0 ? result_buf : stderr_buf;
                buf.append(chunk, std::size_t(got));
                if (i == 1)
                    keepTail(buf);
            } else if (got == 0 ||
                       (got < 0 && errno != EINTR && errno != EAGAIN)) {
                ::close(fds[i].fd);
                fds[i].fd = -1;
                --open_fds;
            }
        }
    }
    for (auto &fd : fds) {
        if (fd.fd >= 0)
            ::close(fd.fd);
    }

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    keepTail(stderr_buf);

    if (killed) {
        JobResult r = rowForSpec(spec);
        r.status = "wall_timeout";
        r.error = csprintf("wall-clock deadline %.0f ms exceeded; "
                           "child killed", wall_deadline_ms);
        r.stderrTail = stderr_buf;
        return r;
    }
    if (WIFSIGNALED(status)) {
        JobResult r = rowForSpec(spec);
        r.status = "crashed";
        int sig = WTERMSIG(status);
        r.error = csprintf("child terminated by signal %d (%s)", sig,
                           strsignal(sig));
        r.stderrTail = stderr_buf;
        return r;
    }

    // The child exited; its last (only) line should be the row.
    while (!result_buf.empty() &&
           (result_buf.back() == '\n' || result_buf.back() == '\r'))
        result_buf.pop_back();
    std::string perr;
    Json doc = Json::parse(result_buf, &perr);
    JobResult r;
    std::string rerr;
    if (result_buf.empty() || !perr.empty() ||
        !rowFromJson(doc, &r, &rerr)) {
        JobResult bad = rowForSpec(spec);
        bad.status = "crashed";
        bad.error = csprintf(
            "child exited (status %d) without a valid result%s%s",
            WIFEXITED(status) ? WEXITSTATUS(status) : -1,
            perr.empty() && rerr.empty() ? "" : ": ",
            (!perr.empty() ? perr : rerr).c_str());
        bad.stderrTail = stderr_buf;
        return bad;
    }
    return r;
}

#else // !CSYNC_HAVE_FORK

JobResult
runJobInChild(const JobSpec &spec, double)
{
    JobResult r = rowForSpec(spec);
    r.status = "error";
    r.error = "process isolation (--isolate) is not supported on this "
              "platform";
    return r;
}

#endif

} // namespace harness
} // namespace csync
