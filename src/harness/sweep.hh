/**
 * @file
 * Declarative experiment campaigns: a SweepSpec names axes — protocol,
 * workload, processor count, cache geometry, seed — and expands their
 * cartesian product into a flat list of fully-specified jobs (one
 * SystemConfig + workload recipe each).  Specs parse from JSON with
 * actionable error messages; expansion validates every axis value
 * against the protocol registry and workload factory up front, so a
 * campaign never discovers a typo 500 jobs in.
 */

#ifndef CSYNC_HARNESS_SWEEP_HH
#define CSYNC_HARNESS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "system/config.hh"

namespace csync
{
namespace harness
{

/** One fully-expanded campaign job. */
struct JobSpec
{
    /** Unique row key, e.g. "bitar/barrier/p4/bw4/f128/s1". */
    std::string name;
    /** System under test. */
    SystemConfig config;
    /** Workload recipe name (workload_factory). */
    std::string workload;
    /** Campaign seed for this job. */
    std::uint64_t seed = 1;
    /** Operations per processor (recipe-scaled). */
    std::uint64_t ops = 2000;
    /** Simulated-time budget; exceeding it marks the job "timeout". */
    Tick maxTicks = 50'000'000;
};

/** A declarative cartesian experiment grid. */
struct SweepSpec
{
    /** Campaign name (manifest). */
    std::string name = "campaign";

    /** @name Axes (each must be non-empty; the grid is their product) */
    /// @{
    std::vector<std::string> protocols;
    std::vector<std::string> workloads;
    /** Captured traces to replay (.ctrace paths); each expands like a
     *  workload, named "trace:<stem>" in job keys.  May be used
     *  instead of (or alongside) the workloads axis. */
    std::vector<std::string> traces;
    /** Interconnect topology presets (TopologyConfig::names()); the
     *  default single entry keeps campaigns on the paper's baseline
     *  single bus (and their job names unchanged). */
    std::vector<std::string> topologies{"single_bus"};
    /** Declarative topology spec files (topology_spec.hh JSON); each
     *  expands like a preset, tagged in job names by the spec's
     *  declared "name".  Naming only specs replaces the default
     *  single_bus entry rather than adding to it. */
    std::vector<std::string> topologySpecs;
    /** Bus arbitration policies (ArbitrationRegistry::names()); the
     *  default single entry keeps campaigns on the paper's round-robin
     *  grant order (and their job names unchanged). */
    std::vector<std::string> arbitrations{"round_robin"};
    std::vector<unsigned> processorCounts{4};
    std::vector<unsigned> blockWords{4};
    std::vector<unsigned> frames{128};
    std::vector<std::uint64_t> seeds{1};
    /** Fault-injection rates; the default single 0 keeps campaigns
     *  fault-free (and their stats trees unchanged). */
    std::vector<double> faultRates{0.0};
    /** Fault PRNG seeds (independent of workload seeds). */
    std::vector<std::uint64_t> faultSeeds{1};
    /// @}

    /** @name Per-job constants */
    /// @{
    std::uint64_t opsPerProcessor = 2000;
    Tick maxTicks = 50'000'000;
    unsigned ways = 0; // fully associative
    bool enableChecker = true;
    /** Fault kinds every faulty job may inject; empty = all kinds. */
    std::vector<std::string> faultKinds;
    /** Fault timing/backoff/watchdog constants (rate and seed come
     *  from the axes above). */
    FaultPlan faultBase;
    /// @}

    /**
     * Parse a spec from a JSON document (see EXPERIMENTS.md for the
     * schema).  @return false with *err set on malformed input.
     */
    static bool fromJson(const Json &doc, SweepSpec *out,
                         std::string *err);

    /**
     * Expand the grid into jobs, axis order: protocol (outermost), then
     * workload, processors, blockWords, frames, seed.
     * @return false with *err set if any axis value is invalid.
     */
    bool expand(std::vector<JobSpec> *out, std::string *err) const;

    /** Echo the spec as JSON (campaign manifest). */
    Json toJson() const;
};

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_SWEEP_HH
