/**
 * @file
 * Child-process job isolation for the campaign engine: run one job in
 * a forked child so an aborting or crashing simulation (a fatal() in a
 * new protocol, an injected-fault livelock that trips an assert, a
 * real memory bug) becomes a structured "crashed" row — with the tail
 * of the child's stderr attached — instead of taking the whole
 * campaign down.  The parent enforces the wall-clock deadline with
 * SIGKILL, so even a wedged child cannot stall the sweep.
 */

#ifndef CSYNC_HARNESS_RUNNER_PROC_HH
#define CSYNC_HARNESS_RUNNER_PROC_HH

#include "harness/campaign.hh"

namespace csync
{
namespace harness
{

/** True when this platform can run jobs in child processes. */
bool childIsolationSupported();

/**
 * Run @p spec in a forked child process.
 *
 * The child executes CampaignRunner::runJob and ships the row back
 * over a pipe; its stderr is captured.  Outcomes:
 *  - child completes: its row, verbatim (ok/timeout/livelock/error);
 *  - child dies on a signal: a "crashed" row naming the signal, with
 *    the last 2 KiB of stderr in JobResult::stderrTail;
 *  - @p wall_deadline_ms > 0 elapses: the child is SIGKILLed and the
 *    row is "wall_timeout".
 *
 * On platforms without fork() this returns an "error" row.
 */
JobResult runJobInChild(const JobSpec &spec, double wall_deadline_ms);

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_RUNNER_PROC_HH
