#include "harness/json.hh"

#include <cctype>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/stats_json.hh"

namespace csync
{
namespace harness
{

namespace
{

const Json &
nullValue()
{
    static const Json v;
    return v;
}

/** Recursive-descent JSON parser tracking line/column for messages. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    Json
    run()
    {
        Json v = value();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage after document");
            return Json();
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (failed_)
            return;
        failed_ = true;
        if (err_) {
            *err_ = csprintf("JSON error at line %u column %u: %s",
                             line_, col_, what.c_str());
        }
    }

    bool
    eof() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return eof() ? '\0' : text_[pos_];
    }

    char
    get()
    {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void
    skipWs()
    {
        while (!eof()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                get();
            else
                break;
        }
    }

    bool
    expect(char c)
    {
        skipWs();
        if (peek() != c) {
            fail(csprintf("expected '%c'", c));
            return false;
        }
        get();
        return true;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (peek() != *p) {
                fail(csprintf("bad literal (expected \"%s\")", word));
                return false;
            }
            get();
        }
        return true;
    }

    Json
    value()
    {
        skipWs();
        if (eof()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't': return literal("true") ? Json(true) : Json();
          case 'f': return literal("false") ? Json(false) : Json();
          case 'n': return literal("null") ? Json(nullptr) : Json();
          default:
            if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
                return number();
            fail(csprintf("unexpected character '%c'", c));
            return Json();
        }
    }

    Json
    object()
    {
        Json obj = Json::object();
        get(); // '{'
        skipWs();
        if (peek() == '}') {
            get();
            return obj;
        }
        while (!failed_) {
            skipWs();
            if (peek() != '"') {
                fail("expected object key string");
                break;
            }
            std::string key = string();
            if (failed_)
                break;
            if (!expect(':'))
                break;
            Json v = value();
            if (failed_)
                break;
            obj.set(key, std::move(v));
            skipWs();
            char c = peek();
            if (c == ',') {
                get();
                continue;
            }
            if (c == '}') {
                get();
                break;
            }
            fail("expected ',' or '}' in object");
        }
        return obj;
    }

    Json
    array()
    {
        Json arr = Json::array();
        get(); // '['
        skipWs();
        if (peek() == ']') {
            get();
            return arr;
        }
        while (!failed_) {
            Json v = value();
            if (failed_)
                break;
            arr.push(std::move(v));
            skipWs();
            char c = peek();
            if (c == ',') {
                get();
                continue;
            }
            if (c == ']') {
                get();
                break;
            }
            fail("expected ',' or ']' in array");
        }
        return arr;
    }

    std::string
    string()
    {
        std::string out;
        get(); // '"'
        while (true) {
            if (eof()) {
                fail("unterminated string");
                return out;
            }
            char c = get();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof()) {
                fail("unterminated escape");
                return out;
            }
            char e = get();
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (eof() ||
                        !std::isxdigit(
                            static_cast<unsigned char>(peek()))) {
                        fail("bad \\u escape");
                        return out;
                    }
                    char h = get();
                    code = code * 16 +
                           unsigned(h <= '9' ? h - '0'
                                             : (std::tolower(h) - 'a') +
                                                   10);
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // not needed for stat names; pass them through raw).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail(csprintf("bad escape '\\%c'", e));
                return out;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            get();
        while (!eof() &&
               (std::isdigit(static_cast<unsigned char>(peek())) ||
                peek() == '.' || peek() == 'e' || peek() == 'E' ||
                peek() == '+' || peek() == '-')) {
            get();
        }
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || tok.empty()) {
            fail(csprintf("bad number \"%s\"", tok.c_str()));
            return Json();
        }
        return Json(v);
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
    unsigned col_ = 1;
    bool failed_ = false;
};

} // anonymous namespace

Json
Json::array()
{
    Json v;
    v.type_ = Type::Array;
    return v;
}

Json
Json::object()
{
    Json v;
    v.type_ = Type::Object;
    return v;
}

Json
Json::parse(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    return Parser(text, err).run();
}

bool
Json::asBool(bool dflt) const
{
    return isBool() ? bool_ : dflt;
}

double
Json::asNumber(double dflt) const
{
    return isNumber() ? num_ : dflt;
}

const std::string &
Json::asString() const
{
    static const std::string empty;
    return isString() ? str_ : empty;
}

std::size_t
Json::size() const
{
    if (isArray())
        return arr_.size();
    if (isObject())
        return obj_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    if (!isArray() || i >= arr_.size())
        return nullValue();
    return arr_[i];
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    sim_assert(isArray(), "push on non-array JSON value");
    arr_.push_back(std::move(v));
}

const Json &
Json::operator[](const std::string &key) const
{
    if (isObject()) {
        for (const auto &kv : obj_) {
            if (kv.first == key)
                return kv.second;
        }
    }
    return nullValue();
}

bool
Json::has(const std::string &key) const
{
    if (!isObject())
        return false;
    for (const auto &kv : obj_) {
        if (kv.first == key)
            return true;
    }
    return false;
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    sim_assert(isObject(), "set on non-object JSON value");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    static const std::vector<std::pair<std::string, Json>> empty;
    return isObject() ? obj_ : empty;
}

void
Json::dumpTo(std::string &out, int indent) const
{
    auto pad = [&](int n) {
        if (n >= 0)
            out.append(std::size_t(n), ' ');
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += stats::jsonNumber(num_);
        break;
      case Type::String:
        out += '"';
        out += stats::jsonEscape(str_);
        out += '"';
        break;
      case Type::Array: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            if (indent >= 0) {
                out += '\n';
                pad(indent + 2);
            }
            arr_[i].dumpTo(out, indent >= 0 ? indent + 2 : -1);
        }
        if (indent >= 0) {
            out += '\n';
            pad(indent);
        }
        out += ']';
        break;
      }
      case Type::Object: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &kv : obj_) {
            if (!first)
                out += ',';
            first = false;
            if (indent >= 0) {
                out += '\n';
                pad(indent + 2);
            }
            out += '"';
            out += stats::jsonEscape(kv.first);
            out += "\": ";
            kv.second.dumpTo(out, indent >= 0 ? indent + 2 : -1);
        }
        if (indent >= 0) {
            out += '\n';
            pad(indent);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    if (indent > 0)
        out.append(std::size_t(indent), ' ');
    dumpTo(out, indent);
    return out;
}

} // namespace harness
} // namespace csync
