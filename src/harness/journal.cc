#include "harness/journal.hh"

#include <cstdio>

#include "harness/campaign_io.hh"
#include "sim/logging.hh"

namespace csync
{
namespace harness
{

namespace
{

/** FNV-1a 64-bit over @p s. */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // anonymous namespace

std::string
jobFingerprint(const JobSpec &spec)
{
    // Every field that changes what the simulation computes, in a
    // fixed layout.  The fault plan is folded in via its canonical
    // JSON echo so new plan fields can never silently alias two
    // different experiments to one ID.
    const SystemConfig &c = spec.config;
    std::string fp = csprintf(
        "job|%s|cfg=%s|proto=%s|topo=%s|procs=%u|bw=%u|frames=%u|"
        "ways=%u|checker=%d|io=%d|dirproto=%d|wl=%s|seed=%llu|"
        "ops=%llu|maxticks=%llu|fault=%s",
        spec.name.c_str(), c.name.c_str(), c.protocol.c_str(),
        c.topology.preset.c_str(), c.numProcessors,
        c.cache.geom.blockWords, c.cache.geom.frames, c.cache.geom.ways,
        int(c.enableChecker), int(c.withIODevice),
        int(c.directoryFromProtocol), spec.workload.c_str(),
        (unsigned long long)spec.seed, (unsigned long long)spec.ops,
        (unsigned long long)spec.maxTicks,
        c.fault.toJson().dump(-1).c_str());
    // Appended only off the defaults so every pre-arbitration journal
    // keeps resuming against its recorded IDs.
    if (c.arbitration != "round_robin")
        fp += csprintf("|arb=%s", c.arbitration.c_str());
    if (!c.adaptive.isDefault()) {
        fp += csprintf("|adaptive=%u/%u/%u", c.adaptive.counterBits,
                       c.adaptive.invalidateThreshold,
                       c.adaptive.updateThreshold);
    }
    return fp;
}

std::string
jobId(const JobSpec &spec)
{
    return csprintf("%016llx",
                    (unsigned long long)fnv1a64(jobFingerprint(spec)));
}

std::string
Shard::str() const
{
    return csprintf("%u/%u", index + 1, count);
}

bool
parseShard(const std::string &text, Shard *out, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = csprintf("shard '%s': %s", text.c_str(),
                            what.c_str());
        return false;
    };
    std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        return fail("expected i/N (e.g. 1/4)");
    }
    char *end = nullptr;
    unsigned long i = std::strtoul(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
        return fail("bad shard index");
    unsigned long n =
        std::strtoul(text.c_str() + slash + 1, &end, 10);
    if (end != text.c_str() + text.size())
        return fail("bad shard count");
    if (n == 0)
        return fail("shard count must be >= 1");
    if (i == 0 || i > n)
        return fail(csprintf("index must be in 1..%lu", n));
    out->index = unsigned(i - 1);
    out->count = unsigned(n);
    return true;
}

bool
shardContains(const Shard &shard, const std::string &job_id)
{
    if (shard.whole())
        return true;
    return fnv1a64(job_id) % shard.count == shard.index;
}

bool
JournalWriter::create(const std::string &path,
                      const JournalHeader &header, std::string *err)
{
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) {
        if (err)
            *err = "cannot create journal " + path;
        return false;
    }
    path_ = path;
    Json doc = Json::object();
    doc.set("csync_journal", kJournalVersion);
    doc.set("name", header.name);
    doc.set("spec", header.spec);
    doc.set("jobs", double(header.jobs));
    if (!header.shard.empty())
        doc.set("shard", header.shard);
    out_ << doc.dump(-1) << "\n";
    out_.flush();
    if (!out_) {
        if (err)
            *err = "write failed for journal " + path;
        return false;
    }
    return true;
}

bool
JournalWriter::append(const std::string &path, std::string *err)
{
    out_.open(path, std::ios::binary | std::ios::app);
    if (!out_) {
        if (err)
            *err = "cannot append to journal " + path;
        return false;
    }
    path_ = path;
    return true;
}

bool
JournalWriter::add(const std::string &job_id, const JobResult &row,
                   std::string *err)
{
    Json line = Json::object();
    line.set("job_id", job_id);
    line.set("name", row.name);
    if (row.wallMs != 0)
        line.set("wall_ms", row.wallMs);
    line.set("row", rowToJson(row));
    out_ << line.dump(-1) << "\n";
    out_.flush();
    if (!out_) {
        if (err)
            *err = "write failed for journal " + path_;
        return false;
    }
    return true;
}

bool
loadJournal(const std::string &path, JournalData *out, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = "journal " + path + ": " + what;
        return false;
    };
    std::string text;
    if (!readFile(path, &text, err))
        return false;

    JournalData data;
    std::size_t pos = 0, line_no = 0;
    bool have_header = false;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        bool torn = nl == std::string::npos;
        std::string line =
            text.substr(pos, torn ? std::string::npos : nl - pos);
        pos = torn ? text.size() : nl + 1;
        ++line_no;
        if (line.empty())
            continue;

        std::string perr;
        Json doc = Json::parse(line, &perr);
        bool last = pos >= text.size();
        if (!perr.empty()) {
            // A torn or half-flushed final line is exactly what a
            // SIGKILL leaves behind; anything earlier is corruption.
            if (last) {
                data.truncatedTail = true;
                break;
            }
            return fail(csprintf("line %zu: %s", line_no,
                                 perr.c_str()));
        }

        if (!have_header) {
            if (!doc["csync_journal"].isNumber())
                return fail("first line is not a journal header");
            if (int(doc["csync_journal"].asNumber()) != kJournalVersion) {
                return fail(csprintf(
                    "unsupported version %d",
                    int(doc["csync_journal"].asNumber())));
            }
            data.header.name = doc["name"].asString();
            data.header.spec = doc["spec"];
            data.header.jobs = std::size_t(doc["jobs"].asNumber());
            data.header.shard = doc["shard"].asString();
            have_header = true;
            continue;
        }

        if (!doc["job_id"].isString() || !doc["row"].isObject()) {
            if (last && torn) {
                data.truncatedTail = true;
                break;
            }
            return fail(csprintf("line %zu: not a row record",
                                 line_no));
        }
        JobResult row;
        std::string rerr;
        if (!rowFromJson(doc["row"], &row, &rerr))
            return fail(csprintf("line %zu: %s", line_no,
                                 rerr.c_str()));
        data.byId.emplace(doc["job_id"].asString(), std::move(row));
    }
    if (!have_header)
        return fail("empty file (no header line)");
    *out = std::move(data);
    return true;
}

CampaignResult
finalizeCampaign(const std::string &name, const Json &spec_json,
                 const std::vector<JobSpec> &grid,
                 const std::map<std::string, JobResult> &by_id,
                 std::vector<std::string> *missing)
{
    CampaignResult result;
    result.name = name;
    result.specJson = spec_json;
    // Host-timing fields stay zero (and are omitted from the document)
    // so the finalized campaign is a pure function of the simulations.
    for (const auto &job : grid) {
        auto it = by_id.find(jobId(job));
        if (it == by_id.end()) {
            if (missing)
                missing->push_back(job.name);
            continue;
        }
        JobResult row = it->second;
        row.wallMs = 0;
        row.hostMops = 0;
        result.rows.push_back(std::move(row));
    }
    return result;
}

} // namespace harness
} // namespace csync
