#include "harness/workload_factory.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "coherence/protocol.hh"
#include "proc/workloads/barrier.hh"
#include "proc/workloads/critical_section.hh"
#include "proc/workloads/migration.hh"
#include "proc/workloads/producer_consumer.hh"
#include "proc/workloads/random_sharing.hh"
#include "proc/workloads/service_queue.hh"
#include "sim/logging.hh"
#include "trace/replay.hh"

namespace csync
{
namespace harness
{

namespace
{

/**
 * Lock algorithm a protocol can actually run: the paper's cache-lock
 * states where supported, test-and-test-and-set where the protocol at
 * least serializes atomic read-modify-writes (Feature 6).  Protocols
 * with neither (Goodman, Yen, classic write-through) cannot express a
 * lock at all; lock-based recipes report that instead of panicking.
 */
bool
lockAlgFor(const std::string &protocol, const char *recipe, LockAlg *alg,
           std::string *err)
{
    auto p = makeProtocol(protocol);
    if (p->supportsLockOps()) {
        *alg = LockAlg::CacheLock;
        return true;
    }
    if (p->features().atomicRmw) {
        *alg = LockAlg::TestTestSet;
        return true;
    }
    if (err) {
        *err = csprintf("workload '%s' needs a lock, but protocol '%s' "
                        "has neither cache locking nor atomic "
                        "read-modify-write (Feature 6)",
                        recipe, protocol.c_str());
    }
    return false;
}

bool
wantsPrivateHints(const std::string &protocol)
{
    return makeProtocol(protocol)->features().fetchUnsharedForWrite == 'S';
}

std::unique_ptr<Workload>
makeRandom(const WorkloadSlot &s, double shared_frac,
           double write_frac)
{
    RandomSharingParams p;
    p.ops = s.ops;
    p.procId = s.procId;
    p.seed = s.seed * 1000003 + s.procId + 1;
    p.sharedBlocks = 16;
    p.privateBlocks = 64;
    p.sharedFraction = shared_frac;
    p.writeFraction = write_frac;
    p.blockBytes = s.blockBytes;
    p.privateHints = wantsPrivateHints(s.protocol);
    return std::make_unique<RandomSharingWorkload>(p);
}

/**
 * Domain-partitioned random sharing: even processors confine their
 * shared and private regions to the low 16 MiB (the two_switch sync
 * side), odd processors to the high region (the data side).  Within a
 * group the shared region still contends normally; across groups no
 * address is ever shared, so on two_switch the parallel engine can
 * prove the machine partitionable and shard it — this is the recipe
 * behind the multi-domain speedup kernel.  On single_bus it is just
 * another random-sharing mix (one domain, serial engine).
 */
std::unique_ptr<Workload>
makeDomainLocal(const WorkloadSlot &s, std::string *)
{
    RandomSharingParams p;
    p.ops = s.ops;
    p.procId = s.procId;
    p.seed = s.seed * 1000003 + s.procId + 1;
    p.sharedBlocks = 16;
    p.privateBlocks = 64;
    p.sharedFraction = 0.3;
    p.writeFraction = 0.3;
    p.blockBytes = s.blockBytes;
    p.privateHints = wantsPrivateHints(s.protocol);
    if (s.procId % 2 == 0) {
        // Sync-side group: everything below the two_switch 16 MiB
        // split.  The tight stride keeps ~96 even processors inside;
        // beyond that the footprint spills over the split and the
        // partition analysis falls back to the serial engine — wrong
        // shape, never wrong results.
        p.sharedBase = 0x200000;
        p.privateBase = 0x400000;
        p.privateStride = 0x20000;
    } else {
        p.sharedBase = 0x10000000;
        p.privateBase = 0x12000000;
    }
    return std::make_unique<RandomSharingWorkload>(p);
}

/**
 * Cluster-partitioned random sharing: each processor confines its
 * shared and private regions to its own cluster's 256 MiB address
 * stride (the clustered presets' tiling, mirroring clusterOfProc's
 * contiguous-block assignment).  Within a cluster the shared region
 * contends normally; across clusters no address is ever shared, so on
 * a clustered topology every transaction is cluster-local — the snoop
 * filter keeps the root bus silent, and the parallel engine can shard
 * the machine one domain per cluster.  On a flat machine it is just
 * another random-sharing mix.
 */
std::unique_ptr<Workload>
makeClusterLocal(const WorkloadSlot &s, std::string *)
{
    RandomSharingParams p;
    p.ops = s.ops;
    p.procId = s.procId;
    p.seed = s.seed * 1000003 + s.procId + 1;
    p.sharedBlocks = 16;
    p.privateBlocks = 64;
    p.sharedFraction = 0.3;
    p.writeFraction = 0.3;
    p.blockBytes = s.blockBytes;
    p.privateHints = wantsPrivateHints(s.protocol);
    unsigned clusters = std::max(1u, s.numClusters);
    unsigned mine = unsigned(
        (std::uint64_t(s.procId) * clusters) / std::max(1u, s.numProcs));
    Addr base = Addr(mine) * 0x1000'0000;
    p.sharedBase = base + 0x200000;
    p.privateBase = base + 0x400000;
    p.privateStride = 0x20000;
    return std::make_unique<RandomSharingWorkload>(p);
}

std::unique_ptr<Workload>
makeCriticalSection(const WorkloadSlot &s, std::string *err)
{
    CriticalSectionParams p;
    if (!lockAlgFor(s.protocol, "critical_section", &p.alg, err))
        return nullptr;
    // One critical section is ~6 memory ops (acquire, 2x read+write,
    // release); scale iterations so job cost tracks s.ops.
    p.iterations = std::max<std::uint64_t>(1, s.ops / 8);
    p.numLocks = 1;
    p.wordsPerCs = 2;
    p.blockBytes = s.blockBytes;
    p.seed = s.seed * 1000003 + s.procId + 1;
    p.procId = s.procId;
    return std::make_unique<CriticalSectionWorkload>(p);
}

std::unique_ptr<Workload>
makeMigration(const WorkloadSlot &s, std::string *)
{
    MigrationParams p;
    p.rounds = std::max<std::uint64_t>(1, s.ops / 32);
    p.stateWords = 8;
    p.numProcs = s.numProcs;
    p.procId = s.procId;
    return std::make_unique<MigrationWorkload>(p);
}

std::unique_ptr<Workload>
makeBarrier(const WorkloadSlot &s, std::string *err)
{
    BarrierParams p;
    if (!lockAlgFor(s.protocol, "barrier", &p.alg, err))
        return nullptr;
    p.rounds = std::max<std::uint64_t>(1, s.ops / 32);
    p.numProcs = s.numProcs;
    p.procId = s.procId;
    return std::make_unique<BarrierWorkload>(p);
}

std::unique_ptr<Workload>
makeProducerConsumer(const WorkloadSlot &s, std::string *)
{
    // Processors pair up: 2k produces for 2k+1, each pair on its own
    // flag/data blocks.  An odd trailing processor runs private
    // background traffic instead of half a pair.
    if (s.numProcs % 2 != 0 && s.procId == s.numProcs - 1)
        return makeRandom(s, 0.0, 0.3);
    unsigned pair = s.procId / 2;
    ProducerConsumerParams p;
    p.items = std::max<std::uint64_t>(1, s.ops / 16);
    p.dataWords = 4;
    p.flagAddr = 0x100000 + Addr(pair) * 0x10000;
    p.dataBase = p.flagAddr + 0x100;
    if (s.procId % 2 == 0)
        return std::make_unique<ProducerWorkload>(p);
    return std::make_unique<ConsumerWorkload>(p);
}

std::unique_ptr<Workload>
makeServiceQueue(const WorkloadSlot &s, std::string *err)
{
    // Even processors produce, odd ones consume, all hammering ONE
    // shared queue (Section B.2's contended service queue).  An odd
    // trailing processor runs private background traffic so enqueues
    // and dequeues stay balanced.
    if (s.numProcs % 2 != 0 && s.procId == s.numProcs - 1)
        return makeRandom(s, 0.0, 0.3);
    ServiceQueueParams p;
    if (!lockAlgFor(s.protocol, "service_queue", &p.alg, err))
        return nullptr;
    // One queue operation is ~7 memory ops (acquire, head, tail, slot,
    // index, release); scale so job cost tracks s.ops.
    p.operations = std::max<std::uint64_t>(1, s.ops / 8);
    p.blockBytes = s.blockBytes;
    p.procId = s.procId;
    p.seed = s.seed * 1000003 + s.procId + 1;
    return std::make_unique<ServiceQueueWorkload>(
        p, s.procId % 2 ? QueueRole::Consumer : QueueRole::Producer);
}

/**
 * Lock algorithm for replaying a trace's lock/unlock events.  Starts
 * from the protocol's best algorithm (lockAlgFor), with one replay
 * twist: a blocking cache-lock acquire parks its whole processor, so
 * when threads are multiplexed (more trace threads than processors)
 * the lock holder can be parked behind a waiter on its own processor
 * — a deadlock no trace content can avoid.  Multiplexed replays spin
 * with test-and-test-and-set instead.
 */
bool
traceLockAlg(const std::string &protocol, unsigned num_threads,
             unsigned num_procs, LockAlg *alg, std::string *err)
{
    if (!lockAlgFor(protocol, "trace replay", alg, err))
        return false;
    if (*alg == LockAlg::CacheLock && num_threads > num_procs) {
        if (!makeProtocol(protocol)->features().atomicRmw) {
            if (err) {
                *err = csprintf(
                    "trace replay with %u threads on %u processors "
                    "needs atomic read-modify-write to spin, but "
                    "protocol '%s' has none (cache locking would "
                    "deadlock a multiplexed processor)",
                    num_threads, num_procs, protocol.c_str());
            }
            return false;
        }
        *alg = LockAlg::TestTestSet;
    }
    return true;
}

std::unique_ptr<Workload>
makeTraceReplay(const std::string &path, const WorkloadSlot &s,
                std::string *err)
{
    if (path.empty()) {
        if (err)
            *err = "trace recipe names no file (use trace:<path>)";
        return nullptr;
    }
    if (!s.traceEngine) {
        if (err) {
            *err = "trace replay needs a run-scoped engine slot "
                   "(WorkloadSlot::traceEngine), which this embedder "
                   "does not provide";
        }
        return nullptr;
    }
    std::shared_ptr<trace::TraceReplayEngine> &eng = *s.traceEngine;
    if (!eng) {
        auto fresh = std::make_shared<trace::TraceReplayEngine>();
        if (!fresh->open(path, err))
            return nullptr;
        LockAlg alg = LockAlg::TestTestSet;
        if (fresh->header().hasLocks() &&
            !traceLockAlg(s.protocol, fresh->numThreads(), s.numProcs,
                          &alg, err)) {
            return nullptr;
        }
        fresh->configure(s.numProcs, alg);
        eng = std::move(fresh);
    }
    return eng->makeWorkload(s.procId);
}

/**
 * Hidden harness-test recipe: issue a handful of reads, then abort the
 * process.  Exercises the campaign engine's crash isolation
 * (`--isolate` turns the abort into a "crashed" row); never listed in
 * workloadNames() so no sweep stumbles into it.
 */
class CrashWorkload : public Workload
{
  public:
    explicit CrashWorkload(const WorkloadSlot &s)
        : fuse_(16 + s.procId), blockBytes_(s.blockBytes)
    {}

    NextStatus
    next(MemOp &op, Tick &think) override
    {
        if (issued_ >= fuse_) {
            std::fprintf(stderr, "__crash workload: deliberate abort "
                                 "after %llu ops (harness crash-"
                                 "isolation test)\n",
                         (unsigned long long)issued_);
            std::abort();
        }
        ++issued_;
        op = MemOp();
        op.type = OpType::Read;
        op.addr = 0x40000 + Addr(issued_ % 8) * blockBytes_;
        think = 1;
        return NextStatus::Op;
    }

    void onResult(const MemOp &, const AccessResult &) override {}
    std::string describe() const override { return "__crash"; }
    bool done() const override { return false; }

  private:
    std::uint64_t fuse_;
    std::uint64_t issued_ = 0;
    Addr blockBytes_;
};

/**
 * Hidden harness-test recipe: read forever, never finish.  Exercises
 * the wall-clock deadline watchdog (the simulated-time budget is the
 * only other way out).  Never listed in workloadNames().
 */
class SpinWorkload : public Workload
{
  public:
    explicit SpinWorkload(const WorkloadSlot &s)
        : blockBytes_(s.blockBytes)
    {}

    NextStatus
    next(MemOp &op, Tick &think) override
    {
        ++issued_;
        op = MemOp();
        op.type = OpType::Read;
        op.addr = 0x50000 + Addr(issued_ % 8) * blockBytes_;
        think = 1;
        return NextStatus::Op;
    }

    void onResult(const MemOp &, const AccessResult &) override {}
    std::string describe() const override { return "__spin"; }
    bool done() const override { return false; }

  private:
    Addr blockBytes_;
    std::uint64_t issued_ = 0;
};

struct Recipe
{
    const char *name;
    std::unique_ptr<Workload> (*make)(const WorkloadSlot &,
                                      std::string *);
};

const Recipe kRecipes[] = {
    {"barrier", makeBarrier},
    {"cluster_local", makeClusterLocal},
    {"critical_section", makeCriticalSection},
    {"domain_local", makeDomainLocal},
    {"migration", makeMigration},
    {"producer_consumer", makeProducerConsumer},
    {"random_contended",
     [](const WorkloadSlot &s, std::string *) {
         return makeRandom(s, 0.6, 0.4);
     }},
    {"random_sharing",
     [](const WorkloadSlot &s, std::string *) {
         return makeRandom(s, 0.3, 0.3);
     }},
    {"service_queue", makeServiceQueue},
};

} // anonymous namespace

const char kTraceRecipePrefix[] = "trace:";

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &r : kRecipes)
        names.push_back(r.name);
    return names;
}

bool
workloadKnown(const std::string &name)
{
    // The hidden harness-test recipes pass vetting (CI uses them) but
    // never appear in workloadNames().
    if (name == "__crash" || name == "__spin")
        return true;
    for (const auto &r : kRecipes) {
        if (name == r.name)
            return true;
    }
    return false;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadSlot &slot,
             std::string *err)
{
    if (name.rfind(kTraceRecipePrefix, 0) == 0) {
        return makeTraceReplay(
            name.substr(sizeof(kTraceRecipePrefix) - 1), slot, err);
    }
    if (name == "__crash")
        return std::make_unique<CrashWorkload>(slot);
    if (name == "__spin")
        return std::make_unique<SpinWorkload>(slot);
    for (const auto &r : kRecipes) {
        if (name == r.name)
            return r.make(slot, err);
    }
    if (err) {
        std::string known;
        for (const auto &r : kRecipes)
            known += std::string(known.empty() ? "" : ", ") + r.name;
        *err = csprintf("unknown workload '%s' (known: %s; or "
                        "trace:<path> to replay a captured trace)",
                        name.c_str(), known.c_str());
    }
    return nullptr;
}

} // namespace harness
} // namespace csync
