/**
 * @file
 * Minimal JSON document model for the campaign harness: parse, build,
 * query, serialize.  Object keys keep insertion order so serialized
 * documents are deterministic.  Deliberately tiny and dependency-free —
 * campaign files and sweep specs are small, so clarity beats speed.
 */

#ifndef CSYNC_HARNESS_JSON_HH
#define CSYNC_HARNESS_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace csync
{
namespace harness
{

/** One JSON value (null, bool, number, string, array, or object). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(unsigned v) : type_(Type::Number), num_(v) {}
    Json(std::uint64_t v) : type_(Type::Number), num_(double(v)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty array / object. */
    static Json array();
    static Json object();

    /**
     * Parse @p text.
     * @param[out] err On failure: a message with 1-based line/column.
     * @return the document, or a Null value on failure (check @p err).
     */
    static Json parse(const std::string &text, std::string *err);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool(bool dflt = false) const;
    double asNumber(double dflt = 0.0) const;
    const std::string &asString() const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    void push(Json v);

    /** Object access: value for @p key, or a shared Null if absent. */
    const Json &operator[](const std::string &key) const;
    bool has(const std::string &key) const;
    void set(const std::string &key, Json v);
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Serialize.  @p indent < 0 yields a compact single line; >= 0
     * pretty-prints with two-space steps starting at that indentation.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_JSON_HH
