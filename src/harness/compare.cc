#include "harness/compare.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/logging.hh"
#include "sim/stats_json.hh"

namespace csync
{
namespace harness
{

namespace
{

/** Relative drift between two values, in percent. */
double
driftPct(double a, double b)
{
    if (a == b)
        return 0.0;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) / scale * 100.0;
}

class Report
{
  public:
    explicit Report(unsigned max_lines) : maxLines_(max_lines) {}

    void
    line(const std::string &s)
    {
        if (lines_ < maxLines_)
            text_ += "  " + s + "\n";
        else if (lines_ == maxLines_)
            text_ += "  ... (further detail suppressed)\n";
        ++lines_;
    }

    std::string take() { return std::move(text_); }

  private:
    unsigned maxLines_;
    unsigned lines_ = 0;
    std::string text_;
};

} // anonymous namespace

CompareReport
compareCampaigns(const CampaignResult &oldc, const CampaignResult &newc,
                 const CompareOptions &opts)
{
    CompareReport rep;
    Report out(opts.maxReportLines);
    auto note = [&](const std::string &detail) {
        if (rep.firstDiff.empty())
            rep.firstDiff = detail;
        out.line(detail);
    };

    std::map<std::string, const JobResult *> newRows;
    for (const auto &r : newc.rows)
        newRows[r.name] = &r;
    std::map<std::string, const JobResult *> oldRows;
    for (const auto &r : oldc.rows)
        oldRows[r.name] = &r;

    for (const auto &r : newc.rows) {
        if (!oldRows.count(r.name)) {
            ++rep.missing;
            note(csprintf("job %s: only in new campaign",
                          r.name.c_str()));
        }
    }

    for (const auto &oldRow : oldc.rows) {
        auto it = newRows.find(oldRow.name);
        if (it == newRows.end()) {
            ++rep.missing;
            note(csprintf("job %s: missing from new campaign",
                          oldRow.name.c_str()));
            continue;
        }
        const JobResult &newRow = *it->second;

        if (oldRow.status != newRow.status) {
            ++rep.statusChanges;
            std::string forensics;
            if (newRow.firstViolationTick || !newRow.failingStat.empty()) {
                forensics = csprintf(
                    " [first violation: tick %llu, stat %s]",
                    (unsigned long long)newRow.firstViolationTick,
                    newRow.failingStat.empty()
                        ? "?"
                        : newRow.failingStat.c_str());
            }
            note(csprintf("job %s: status %s -> %s%s%s%s",
                          oldRow.name.c_str(), oldRow.status.c_str(),
                          newRow.status.c_str(), forensics.c_str(),
                          newRow.error.empty() ? "" : ": ",
                          newRow.error.c_str()));
            continue;
        }

        // Simulated time is a first-class comparable value.
        ++rep.compared;
        double tickDrift = driftPct(double(oldRow.ticks),
                                    double(newRow.ticks));
        if (tickDrift > opts.tolerancePct) {
            ++rep.drifted;
            note(csprintf(
                "job %s: ticks %llu -> %llu (%.3f%% drift)",
                oldRow.name.c_str(),
                (unsigned long long)oldRow.ticks,
                (unsigned long long)newRow.ticks, tickDrift));
        }

        for (const auto &kv : oldRow.stats) {
            auto ns = newRow.stats.find(kv.first);
            if (ns == newRow.stats.end()) {
                ++rep.missing;
                note(csprintf("job %s: stat %s missing from new "
                              "campaign", oldRow.name.c_str(),
                              kv.first.c_str()));
                continue;
            }
            ++rep.compared;
            double d = driftPct(kv.second, ns->second);
            if (d > opts.tolerancePct) {
                ++rep.drifted;
                note(csprintf(
                    "job %s: %s %s -> %s (%.3f%% drift)",
                    oldRow.name.c_str(), kv.first.c_str(),
                    stats::jsonNumber(kv.second).c_str(),
                    stats::jsonNumber(ns->second).c_str(), d));
            }
        }
        for (const auto &kv : newRow.stats) {
            if (!oldRow.stats.count(kv.first)) {
                ++rep.missing;
                note(csprintf("job %s: stat %s only in new campaign",
                              oldRow.name.c_str(),
                              kv.first.c_str()));
            }
        }
    }

    rep.ok = rep.drifted == 0 && rep.missing == 0 &&
             rep.statusChanges == 0;
    std::string summary = csprintf(
        "compared %u values across %zu reference jobs: %u drifted "
        "beyond %.3f%%, %u missing, %u status changes -> %s\n",
        rep.compared, oldc.rows.size(), rep.drifted, opts.tolerancePct,
        rep.missing, rep.statusChanges, rep.ok ? "OK" : "FAIL");
    // Lead with the first offender: golden regressions should be
    // localizable from the first two lines of output even when the
    // per-stat detail below is suppressed.
    if (!rep.ok && !rep.firstDiff.empty())
        summary += "first difference: " + rep.firstDiff + "\n";
    rep.text = summary + out.take();
    return rep;
}

} // namespace harness
} // namespace csync
