#include "harness/sweep.hh"

#include <algorithm>

#include "coherence/protocol.hh"
#include "harness/workload_factory.hh"
#include "mem/arbitration.hh"
#include "sim/logging.hh"
#include "system/topology_spec.hh"
#include "trace/reader.hh"

namespace csync
{
namespace harness
{

namespace
{

bool
parseError(std::string *err, const std::string &what)
{
    if (err)
        *err = "sweep spec: " + what;
    return false;
}

/** Read a JSON array of strings into @p out. */
bool
stringAxis(const Json &doc, const char *key,
           std::vector<std::string> *out, std::string *err)
{
    const Json &v = doc[key];
    if (v.isNull())
        return true;
    if (!v.isArray())
        return parseError(err, csprintf("\"%s\" must be an array of "
                                        "strings", key));
    out->clear();
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (!v.at(i).isString()) {
            return parseError(err, csprintf("\"%s\"[%zu] is not a string",
                                            key, i));
        }
        out->push_back(v.at(i).asString());
    }
    return true;
}

/** Read a JSON array of non-negative integers into @p out. */
template <typename T>
bool
numberAxis(const Json &doc, const char *key, std::vector<T> *out,
           std::string *err)
{
    const Json &v = doc[key];
    if (v.isNull())
        return true;
    if (!v.isArray())
        return parseError(err, csprintf("\"%s\" must be an array of "
                                        "numbers", key));
    out->clear();
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (!v.at(i).isNumber() || v.at(i).asNumber() < 0) {
            return parseError(
                err, csprintf("\"%s\"[%zu] is not a non-negative number",
                              key, i));
        }
        out->push_back(T(v.at(i).asNumber()));
    }
    return true;
}

template <typename T>
bool
scalarNumber(const Json &doc, const char *key, T *out, std::string *err)
{
    const Json &v = doc[key];
    if (v.isNull())
        return true;
    if (!v.isNumber() || v.asNumber() < 0)
        return parseError(err, csprintf("\"%s\" must be a non-negative "
                                        "number", key));
    *out = T(v.asNumber());
    return true;
}

/** "traces/foo.ctrace" -> "foo": the job-name tag of a trace path. */
std::string
traceStem(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string ext = ".ctrace";
    if (stem.size() > ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
        stem.resize(stem.size() - ext.size());
    }
    return stem;
}

} // anonymous namespace

bool
SweepSpec::fromJson(const Json &doc, SweepSpec *out, std::string *err)
{
    if (!doc.isObject())
        return parseError(err, "document is not a JSON object");

    static const char *known[] = {
        "name", "protocols", "workloads", "traces", "topologies",
        "topology_specs", "arbitrations", "processors", "block_words",
        "frames", "seeds",
        "ops_per_processor", "max_ticks", "ways", "enable_checker",
        "fault_rates", "fault_seeds", "fault_kinds", "fault",
    };
    for (const auto &kv : doc.members()) {
        if (std::find_if(std::begin(known), std::end(known),
                         [&](const char *k) { return kv.first == k; }) ==
            std::end(known)) {
            return parseError(err, csprintf("unknown key \"%s\"",
                                            kv.first.c_str()));
        }
    }

    SweepSpec spec;
    if (doc.has("name")) {
        if (!doc["name"].isString())
            return parseError(err, "\"name\" must be a string");
        spec.name = doc["name"].asString();
    }
    if (!stringAxis(doc, "protocols", &spec.protocols, err) ||
        !stringAxis(doc, "workloads", &spec.workloads, err) ||
        !stringAxis(doc, "traces", &spec.traces, err) ||
        !stringAxis(doc, "topologies", &spec.topologies, err) ||
        !stringAxis(doc, "topology_specs", &spec.topologySpecs, err) ||
        !stringAxis(doc, "arbitrations", &spec.arbitrations, err) ||
        !numberAxis(doc, "processors", &spec.processorCounts, err) ||
        !numberAxis(doc, "block_words", &spec.blockWords, err) ||
        !numberAxis(doc, "frames", &spec.frames, err) ||
        !numberAxis(doc, "seeds", &spec.seeds, err) ||
        !scalarNumber(doc, "ops_per_processor", &spec.opsPerProcessor,
                      err) ||
        !scalarNumber(doc, "max_ticks", &spec.maxTicks, err) ||
        !scalarNumber(doc, "ways", &spec.ways, err)) {
        return false;
    }
    if (doc.has("enable_checker")) {
        if (!doc["enable_checker"].isBool())
            return parseError(err, "\"enable_checker\" must be a bool");
        spec.enableChecker = doc["enable_checker"].asBool();
    }
    if (!numberAxis(doc, "fault_rates", &spec.faultRates, err) ||
        !numberAxis(doc, "fault_seeds", &spec.faultSeeds, err) ||
        !stringAxis(doc, "fault_kinds", &spec.faultKinds, err)) {
        return false;
    }
    if (doc.has("fault")) {
        std::string ferr;
        if (!FaultPlan::fromJson(doc["fault"], &spec.faultBase, &ferr))
            return parseError(err, ferr);
    }
    // Naming only spec files replaces the default single_bus entry —
    // mirroring how the workloads/traces axes compose.
    if (doc.has("topology_specs") && !doc.has("topologies"))
        spec.topologies.clear();
    if (spec.protocols.empty())
        return parseError(err, "\"protocols\" axis is missing or empty");
    if (spec.workloads.empty() && spec.traces.empty()) {
        return parseError(
            err, "\"workloads\" and \"traces\" axes are both missing "
                 "or empty (one is needed)");
    }
    *out = std::move(spec);
    return true;
}

bool
SweepSpec::expand(std::vector<JobSpec> *out, std::string *err) const
{
    auto axisError = [&](const std::string &what) {
        if (err)
            *err = "sweep spec: " + what;
        return false;
    };

    if (protocols.empty() || (workloads.empty() && traces.empty()) ||
        (topologies.empty() && topologySpecs.empty()) ||
        arbitrations.empty() || processorCounts.empty() ||
        blockWords.empty() || frames.empty() || seeds.empty() ||
        faultRates.empty() || faultSeeds.empty()) {
        return axisError("every axis needs at least one value");
    }
    // Vet the arbitration axis up front (csync-sweep exits 2 on a typo).
    for (const auto &a : arbitrations) {
        if (!ArbitrationRegistry::known(a)) {
            std::string known;
            for (const auto &n : ArbitrationRegistry::names())
                known += std::string(known.empty() ? "" : ", ") + n;
            return axisError(csprintf(
                "unknown arbitration '%s' (known: %s)", a.c_str(),
                known.c_str()));
        }
    }
    // Vet the topology axis up front (csync-sweep exits 2 on a typo).
    std::vector<std::pair<std::string, TopologyConfig>> topos;
    for (const auto &t : topologies) {
        TopologyConfig tc;
        if (!TopologyConfig::fromName(t, &tc)) {
            std::string known;
            for (const auto &n : TopologyConfig::names())
                known += std::string(known.empty() ? "" : ", ") + n;
            return axisError(csprintf(
                "unknown topology '%s' (known presets: %s; or pass a "
                "declarative spec file via \"topology_specs\" / "
                "--topology-spec)",
                t.c_str(), known.c_str()));
        }
        topos.emplace_back(t, std::move(tc));
    }
    // Spec files expand like presets, tagged by their declared name;
    // parsed and validated up front like every other axis.
    for (const auto &path : topologySpecs) {
        TopologyConfig tc;
        std::string terr;
        if (!topologyFromSpecFile(path, &tc, &terr))
            return axisError(terr);
        for (const auto &entry : topos) {
            if (entry.first == tc.preset) {
                return axisError(csprintf(
                    "topology spec %s declares name '%s', which "
                    "collides with another topology axis entry",
                    path.c_str(), tc.preset.c_str()));
            }
        }
        std::string tag = tc.preset;
        topos.emplace_back(std::move(tag), std::move(tc));
    }
    // Vet the fault axes up front so a campaign never discovers a bad
    // kind or rate 500 jobs in (and csync-sweep exits 2, not 1).
    FaultPlan faultTemplate = faultBase;
    if (!faultKinds.empty())
        faultTemplate.kinds = faultKinds;
    for (double rate : faultRates) {
        FaultPlan plan = faultTemplate;
        plan.rate = rate;
        std::string why;
        if (!plan.check(&why))
            return axisError(why);
    }
    auto registered = ProtocolRegistry::names();
    for (const auto &p : protocols) {
        if (std::find(registered.begin(), registered.end(), p) ==
            registered.end()) {
            std::string known;
            for (const auto &r : registered)
                known += std::string(known.empty() ? "" : ", ") + r;
            return axisError(csprintf("unknown protocol '%s' (known: %s)",
                                      p.c_str(), known.c_str()));
        }
    }
    for (const auto &w : workloads) {
        if (!workloadKnown(w)) {
            std::string msg;
            makeWorkload(w, WorkloadSlot{}, &msg);
            return axisError(msg);
        }
    }
    // Vet the trace axis up front too: a missing or corrupt trace file
    // is a usage error, not 500 error rows.
    for (const auto &t : traces) {
        trace::TraceReader reader;
        std::string terr;
        if (!reader.open(t, &terr))
            return axisError(terr);
    }
    // Traces expand like workloads; their job tag is the file stem.
    std::vector<std::pair<std::string, std::string>> runs; // recipe,tag
    for (const auto &w : workloads)
        runs.emplace_back(w, w);
    for (const auto &t : traces)
        runs.emplace_back(std::string(kTraceRecipePrefix) + t,
                          "trace:" + traceStem(t));

    out->clear();
    for (const auto &proto : protocols) {
        for (const auto &[wl, wl_tag] : runs) {
          for (const auto &[topo, topo_cfg] : topos) {
            // Single-bus job names carry no topology segment, so rows of
            // pre-topology campaigns keep comparing.
            std::string topo_tag =
                topo == "single_bus" ? "" : "/" + topo;
            for (const auto &arb : arbitrations) {
              // Likewise, round-robin jobs carry no arbitration segment.
              std::string arb_tag =
                  arb == "round_robin" ? "" : "/" + arb;
            for (unsigned procs : processorCounts) {
                for (unsigned bw : blockWords) {
                    for (unsigned fr : frames) {
                        for (std::uint64_t seed : seeds) {
                          for (double frate : faultRates) {
                            for (std::uint64_t fseed : faultSeeds) {
                              JobSpec job;
                              job.name = csprintf(
                                  "%s/%s%s%s/p%u/bw%u/f%u/s%llu",
                                  proto.c_str(), wl_tag.c_str(),
                                  topo_tag.c_str(), arb_tag.c_str(),
                                  procs, bw, fr,
                                  (unsigned long long)seed);
                              if (frate > 0.0) {
                                  job.name += csprintf(
                                      "/fr%g/fs%llu", frate,
                                      (unsigned long long)fseed);
                              }
                              job.config.name = "system";
                              job.config.protocol = proto;
                              job.config.topology = topo_cfg;
                              job.config.arbitration = arb;
                              job.config.numProcessors = procs;
                              job.config.cache.geom.blockWords = bw;
                              job.config.cache.geom.frames = fr;
                              job.config.cache.geom.ways = ways;
                              job.config.enableChecker = enableChecker;
                              job.config.fault = faultTemplate;
                              job.config.fault.rate = frate;
                              job.config.fault.seed = fseed;
                              job.workload = wl;
                              job.seed = seed;
                              job.ops = opsPerProcessor;
                              job.maxTicks = maxTicks;
                              out->push_back(std::move(job));
                              // Fault-free jobs are one row regardless
                              // of how many fault seeds the grid names.
                              if (frate == 0.0)
                                  break;
                            }
                          }
                        }
                    }
                }
            }
            }
          }
        }
    }
    return true;
}

Json
SweepSpec::toJson() const
{
    Json doc = Json::object();
    doc.set("name", name);
    auto strings = [](const std::vector<std::string> &v) {
        Json a = Json::array();
        for (const auto &s : v)
            a.push(s);
        return a;
    };
    auto numbers = [](const auto &v) {
        Json a = Json::array();
        for (auto n : v)
            a.push(double(n));
        return a;
    };
    doc.set("protocols", strings(protocols));
    doc.set("workloads", strings(workloads));
    // Omitted when empty so pre-trace manifests stay identical.
    if (!traces.empty())
        doc.set("traces", strings(traces));
    // Omitted on the default so pre-topology manifests stay identical.
    // Alongside spec files the default must be spelled out, though:
    // fromJson treats an absent "topologies" next to "topology_specs"
    // as "specs only".
    if (!topologies.empty() &&
        (topologies != std::vector<std::string>{"single_bus"} ||
         !topologySpecs.empty())) {
        doc.set("topologies", strings(topologies));
    }
    if (!topologySpecs.empty())
        doc.set("topology_specs", strings(topologySpecs));
    // Omitted on the default so pre-arbitration manifests stay identical.
    if (arbitrations != std::vector<std::string>{"round_robin"})
        doc.set("arbitrations", strings(arbitrations));
    doc.set("processors", numbers(processorCounts));
    doc.set("block_words", numbers(blockWords));
    doc.set("frames", numbers(frames));
    doc.set("seeds", numbers(seeds));
    doc.set("ops_per_processor", double(opsPerProcessor));
    doc.set("max_ticks", double(maxTicks));
    doc.set("ways", ways);
    doc.set("enable_checker", enableChecker);
    doc.set("fault_rates", numbers(faultRates));
    doc.set("fault_seeds", numbers(faultSeeds));
    doc.set("fault_kinds", strings(faultKinds));
    doc.set("fault", faultBase.toJson());
    return doc;
}

} // namespace harness
} // namespace csync
