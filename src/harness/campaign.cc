#include "harness/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "harness/runner_proc.hh"
#include "harness/workload_factory.hh"
#include "sim/stats_json.hh"
#include "system/system.hh"
#include "trace/replay.hh"

namespace csync
{
namespace harness
{

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration<double, std::milli>(steady_clock::now() - t0).count();
}

std::int64_t
nowMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** One worker's in-flight-job record, scanned by the watchdog. */
struct DeadlineSlot
{
    std::atomic<bool> active{false};
    std::atomic<bool> cancel{false};
    std::atomic<std::int64_t> deadlineAtMs{0};
};

} // anonymous namespace

unsigned
CampaignResult::failures() const
{
    unsigned n = 0;
    for (const auto &r : rows)
        n += r.ok() ? 0 : 1;
    return n;
}

JobResult
rowForSpec(const JobSpec &spec)
{
    JobResult r;
    r.name = spec.name;
    r.protocol = spec.config.protocol;
    r.workload = spec.workload;
    r.topology = spec.config.topology.preset;
    r.arbitration = spec.config.arbitration;
    if (spec.workload.rfind(kTraceRecipePrefix, 0) == 0)
        r.trace = spec.workload.substr(
            std::string(kTraceRecipePrefix).size());
    r.procs = spec.config.numProcessors;
    r.blockWords = spec.config.cache.geom.blockWords;
    r.frames = spec.config.cache.geom.frames;
    r.seed = spec.seed;
    return r;
}

JobResult
CampaignRunner::runJob(const JobSpec &spec,
                       const std::atomic<bool> *cancel)
{
    JobResult r = runJobOnce(spec, cancel, false);
    // Anomalous parallel rows rerun serially for canonical forensics
    // (wall_timeout is a host-side event, not a simulation outcome —
    // rerunning would just hit the deadline again).
    if (r.usedParallel && !r.ok() && r.status != "wall_timeout")
        return runJobOnce(spec, cancel, true);
    return r;
}

JobResult
CampaignRunner::runJobOnce(const JobSpec &spec,
                           const std::atomic<bool> *cancel,
                           bool force_serial)
{
    JobResult r = rowForSpec(spec);

    auto t0 = std::chrono::steady_clock::now();
    // Isolate this thread's narration and convert fatal() into a
    // catchable failure: a broken config produces an error row, not an
    // exit, and never interleaves output with concurrent jobs.
    ScopedThreadTrace quiet(nullptr);
    ScopedFatalThrow capture;
    try {
        spec.config.validate();
        SystemConfig cfg = spec.config;
        if (force_serial)
            cfg.simThreads = 1;
        // Trace-replay jobs share one streaming engine across all the
        // run's workload slots; it must outlive the System (whose
        // processors own the workloads pointing at it).
        std::shared_ptr<trace::TraceReplayEngine> traceEngine;
        System sys(cfg);
        for (unsigned i = 0; i < spec.config.numProcessors; ++i) {
            WorkloadSlot slot;
            slot.procId = i;
            slot.numProcs = spec.config.numProcessors;
            slot.ops = spec.ops;
            slot.seed = spec.seed;
            slot.blockBytes =
                Addr(spec.config.cache.geom.blockWords) * bytesPerWord;
            slot.protocol = spec.config.protocol;
            slot.numClusters = spec.config.topology.clustered()
                                   ? spec.config.topology.numClusters()
                                   : 1;
            slot.traceEngine = &traceEngine;
            std::string werr;
            auto w = makeWorkload(spec.workload, slot, &werr);
            if (!w)
                throw FatalError(werr);
            sys.addProcessor(std::move(w));
        }
        sys.start();
        r.usedParallel = sys.parallelActive();
        if (spec.config.topology.clustered()) {
            // The fallback echo must not vary with --sim-threads (the
            // determinism CI compares campaign documents across
            // levels), so it comes from a hypothetical 2-thread plan
            // rather than the live engine.
            SystemConfig hypo = spec.config;
            hypo.simThreads = 2;
            std::vector<const Workload *> wls;
            for (unsigned i = 0; i < sys.numProcessors(); ++i)
                wls.push_back(&sys.processor(i).workload());
            r.partitionFallback =
                planDomainPartition(hypo, sys.addressMap(), wls)
                    .whySerial;
        }
        r.ticks = sys.run(spec.maxTicks, cancel);

        for (unsigned i = 0; i < sys.numCaches(); ++i)
            r.memOps += std::uint64_t(sys.cache(i).accesses.value());
        r.checkerViolations = sys.checker().violations();
        std::string why;
        r.invariantViolations = sys.checkStateInvariants(&why);
        stats::flatten(sys.rootStats(), r.stats);

        if (r.checkerViolations || r.invariantViolations) {
            r.status = "error";
            const std::string &first = r.checkerViolations
                                           ? sys.checker().firstViolation()
                                           : why;
            r.error = csprintf(
                "coherence violated (%u value, %u structural%s%s)",
                r.checkerViolations, r.invariantViolations,
                first.empty() ? "" : ": ", first.c_str());
            // Structural violations are only observable at end of run.
            r.firstViolationTick = r.checkerViolations
                                       ? sys.checker().firstViolationTick()
                                       : r.ticks;
            if (r.checkerViolations) {
                // Name the specific counter the first violation hit and,
                // when one exists, the owning node (for lock violations
                // the holder whose exclusion was broken).
                r.failingStat = spec.config.name + "." +
                                sys.checker().firstViolationStat();
                if (sys.checker().firstViolationNode() != invalidNode) {
                    r.failingStat += csprintf(
                        "@node%d", sys.checker().firstViolationNode());
                }
            } else {
                r.failingStat = spec.config.name + ".invariants";
            }
        } else if (sys.watchdogTripped()) {
            r.status = "livelock";
            r.error = sys.watchdogDiagnostic();
            r.firstViolationTick = r.ticks;
            r.failingStat = spec.config.name + ".watchdog.trips";
        } else if (!sys.allDone()) {
            if (cancel && cancel->load(std::memory_order_relaxed) &&
                r.ticks < spec.maxTicks) {
                // The harness watchdog pulled the plug: a host-side
                // event, not a simulation result.
                r.status = "wall_timeout";
                r.error = csprintf(
                    "wall-clock deadline exceeded at tick %llu",
                    (unsigned long long)r.ticks);
                r.firstViolationTick = r.ticks;
            } else {
                r.status = "timeout";
                r.error = csprintf(
                    "workloads unfinished after %llu ticks",
                    (unsigned long long)spec.maxTicks);
                r.firstViolationTick = r.ticks;
            }
        }
    } catch (const FatalError &e) {
        r.status = "error";
        r.error = e.what();
    } catch (const std::exception &e) {
        r.status = "error";
        r.error = csprintf("exception: %s", e.what());
    }
    r.wallMs = msSince(t0);
    if (r.wallMs > 0)
        r.hostMops = double(r.memOps) / 1e6 / (r.wallMs / 1e3);
    return r;
}

CampaignResult
CampaignRunner::run(const std::vector<JobSpec> &jobs, const Options &opts)
{
    CampaignResult result;
    result.rows.resize(jobs.size());

    unsigned workers = opts.jobs ? opts.jobs
                                 : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = unsigned(
        std::min<std::size_t>(workers, std::max<std::size_t>(
                                           jobs.size(), 1)));
    result.workers = workers;

    auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex reportMutex;

    // One deadline slot per worker; the watchdog thread scans them.
    std::vector<std::unique_ptr<DeadlineSlot>> slots;
    for (unsigned t = 0; t < workers; ++t)
        slots.push_back(std::make_unique<DeadlineSlot>());
    // The in-process watchdog is only needed when jobs run on our own
    // threads; isolated children are policed by their parent worker's
    // poll loop, and the executor seam polices itself.
    bool needWatchdog =
        opts.wallDeadlineMs > 0 && !opts.isolate && !opts.executor;
    std::atomic<bool> watchdogStop{false};
    std::thread watchdog;
    if (needWatchdog) {
        watchdog = std::thread([&]() {
            while (!watchdogStop.load(std::memory_order_relaxed)) {
                std::int64_t now = nowMs();
                for (auto &slot : slots) {
                    if (slot->active.load(std::memory_order_acquire) &&
                        now >= slot->deadlineAtMs.load(
                                   std::memory_order_relaxed)) {
                        slot->cancel.store(true,
                                           std::memory_order_relaxed);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        });
    }

    // Run one attempt of one job, by whichever mechanism is selected.
    auto attemptJob = [&](const JobSpec &spec, unsigned attempt,
                          DeadlineSlot &slot) -> JobResult {
        if (opts.executor)
            return opts.executor(spec, attempt);
        if (opts.isolate)
            return runJobInChild(spec, opts.wallDeadlineMs);
        if (opts.wallDeadlineMs > 0) {
            slot.cancel.store(false, std::memory_order_relaxed);
            slot.deadlineAtMs.store(
                nowMs() + std::int64_t(opts.wallDeadlineMs),
                std::memory_order_relaxed);
            slot.active.store(true, std::memory_order_release);
            JobResult r = runJob(spec, &slot.cancel);
            slot.active.store(false, std::memory_order_release);
            return r;
        }
        return runJob(spec);
    };

    auto worker = [&](unsigned widx) {
        DeadlineSlot &slot = *slots[widx];
        while (true) {
            if (opts.stop &&
                opts.stop->load(std::memory_order_relaxed)) {
                return; // graceful drain: claim nothing further
            }
            std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;

            // Host-side failures (wall-clock timeouts, crashed
            // children) get bounded retries with exponential backoff;
            // deterministic simulation outcomes never do.
            JobResult row;
            double backoff = opts.retryBackoffMs;
            double slept = 0;
            for (unsigned attempt = 1;; ++attempt) {
                row = attemptJob(jobs[i], attempt, slot);
                bool transient = row.status == "wall_timeout" ||
                                 row.status == "crashed";
                row.attempts = attempt;
                row.retryBackoffMs = slept;
                if (!transient || attempt > opts.maxRetries)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(backoff));
                slept += backoff;
                backoff *= 2;
            }

            std::size_t finished = done.fetch_add(1) + 1;
            if (opts.onJobDone) {
                std::lock_guard<std::mutex> lock(reportMutex);
                opts.onJobDone(finished, jobs.size(), row);
            }
            result.rows[i] = std::move(row);
        }
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }
    if (watchdog.joinable()) {
        watchdogStop.store(true);
        watchdog.join();
    }

    // Jobs never claimed (graceful drain) become explicit "skipped"
    // rows so no caller mistakes a default row for a clean result.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (result.rows[i].name.empty()) {
            result.rows[i] = rowForSpec(jobs[i]);
            result.rows[i].status = "skipped";
            result.rows[i].error = "drained before the job ran";
            result.interrupted = true;
        }
    }
    result.wallMs = msSince(t0);
    return result;
}

} // namespace harness
} // namespace csync
