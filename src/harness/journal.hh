/**
 * @file
 * Streaming campaign journal: an append-only JSONL file that records
 * each finished job as it completes, so a campaign interrupted by a
 * crash, OOM kill, or SIGKILL loses at most the rows still in flight.
 *
 * Every job has a *content-hashed stable ID* — a pure function of its
 * fully-expanded spec — so a journal can be resumed (`csync-sweep
 * --resume`) or sharded across machines (`--shard i/N` + `csync-sweep
 * merge`) and still reassemble into the one canonical campaign
 * document, byte-identical to an uninterrupted run.
 *
 * File layout (one JSON document per line):
 *
 *   {"csync_journal":1,"name":...,"spec":{...},"jobs":N,"shard":"i/N"}
 *   {"job_id":"9f2c...","name":"bitar/...","wall_ms":1.2,"row":{...}}
 *   ...
 *
 * The writer flushes after every row; the reader tolerates a torn
 * trailing line (the signature a SIGKILL leaves behind) by dropping it.
 */

#ifndef CSYNC_HARNESS_JOURNAL_HH
#define CSYNC_HARNESS_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/json.hh"
#include "harness/sweep.hh"

namespace csync
{
namespace harness
{

/** Current journal line-format version. */
constexpr int kJournalVersion = 1;

/**
 * Canonical fingerprint of a fully-expanded job: every field that
 * changes what the simulation computes, in a fixed text layout.  Two
 * jobs with equal fingerprints are the same experiment.
 */
std::string jobFingerprint(const JobSpec &spec);

/** Stable job ID: 16 hex digits of FNV-1a64 over the fingerprint. */
std::string jobId(const JobSpec &spec);

/** A deterministic 1-of-N partition of a campaign grid. */
struct Shard
{
    /** Zero-based shard index. */
    unsigned index = 0;
    /** Total shards (1 = the whole grid). */
    unsigned count = 1;

    bool whole() const { return count <= 1; }
    /** Render as the CLI/journal "i/N" form (1-based). */
    std::string str() const;
};

/**
 * Parse "i/N" (1-based, 1 <= i <= N).
 * @return false with *err set on malformed input.
 */
bool parseShard(const std::string &text, Shard *out, std::string *err);

/** True if @p job_id belongs to @p shard (hash partition). */
bool shardContains(const Shard &shard, const std::string &job_id);

/** The journal's first line: identity of the campaign being run. */
struct JournalHeader
{
    std::string name;
    /** Spec echo (SweepSpec::toJson) — resume re-expands from this. */
    Json spec;
    /** Full (pre-shard) grid size; resume/merge sanity-check it. */
    std::size_t jobs = 0;
    /** "i/N" when this journal covers one shard, "" for the whole
     *  grid. */
    std::string shard;
};

/** Appends rows to a journal file, flushing after each one. */
class JournalWriter
{
  public:
    /** Create/truncate @p path and write the header line. */
    bool create(const std::string &path, const JournalHeader &header,
                std::string *err);

    /** Reopen an existing journal for appending (resume). */
    bool append(const std::string &path, std::string *err);

    /** Record one finished row (durable once this returns true). */
    bool add(const std::string &job_id, const JobResult &row,
             std::string *err);

    bool isOpen() const { return out_.is_open(); }
    const std::string &path() const { return path_; }
    void close() { out_.close(); }

  private:
    std::ofstream out_;
    std::string path_;
};

/** Everything a journal file held. */
struct JournalData
{
    JournalHeader header;
    /** Finished rows keyed by job ID (duplicates: first one wins). */
    std::map<std::string, JobResult> byId;
    /** True if a torn trailing line was dropped (interrupted write). */
    bool truncatedTail = false;
};

/**
 * Load a journal.  A torn final line is dropped (that is what a kill
 * mid-append leaves); a malformed line anywhere else is an error.
 * @return false with *err set on I/O or format problems.
 */
bool loadJournal(const std::string &path, JournalData *out,
                 std::string *err);

/**
 * Assemble the canonical campaign from journaled rows: one row per
 * grid job, in grid order, with host-timing fields zeroed so the
 * finalized document is a pure function of the simulations — an
 * interrupted-and-resumed campaign serializes byte-identically to an
 * uninterrupted one.
 *
 * Jobs missing from @p by_id are appended to @p missing (job names)
 * and skipped.
 */
CampaignResult finalizeCampaign(const std::string &name,
                                const Json &spec_json,
                                const std::vector<JobSpec> &grid,
                                const std::map<std::string, JobResult>
                                    &by_id,
                                std::vector<std::string> *missing);

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_JOURNAL_HH
