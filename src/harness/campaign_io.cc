#include "harness/campaign_io.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "sim/stats_json.hh"

namespace csync
{
namespace harness
{

Json
rowToJson(const JobResult &r)
{
    Json row = Json::object();
    row.set("name", r.name);
    row.set("protocol", r.protocol);
    row.set("workload", r.workload);
    row.set("topology", r.topology);
    // The arbitration echo travels only on non-default rows, so
    // pre-arbitration campaigns keep their exact shape.
    if (!r.arbitration.empty() && r.arbitration != "round_robin")
        row.set("arbitration", r.arbitration);
    // The trace axis travels only on trace-replay rows, so synthetic
    // campaigns keep their exact shape.
    if (!r.trace.empty())
        row.set("trace", r.trace);
    // The serial-fallback echo travels only on clustered rows that
    // would not shard, so flat campaigns keep their exact shape.
    if (!r.partitionFallback.empty())
        row.set("partition_fallback", r.partitionFallback);
    row.set("procs", r.procs);
    row.set("block_words", r.blockWords);
    row.set("frames", r.frames);
    row.set("seed", r.seed);
    row.set("status", r.status);
    if (!r.error.empty())
        row.set("error", r.error);
    // Failure forensics travel only on non-ok rows, so ok-only
    // campaigns (e.g. the committed golden) keep their exact shape.
    if (r.firstViolationTick)
        row.set("first_violation_tick", r.firstViolationTick);
    if (!r.failingStat.empty())
        row.set("failing_stat", r.failingStat);
    // Retry accounting appears only once the harness actually retried
    // or captured a crash, so deterministic campaigns stay
    // byte-stable.
    if (r.attempts > 1)
        row.set("attempts", r.attempts);
    if (r.retryBackoffMs != 0)
        row.set("retry_backoff_ms", r.retryBackoffMs);
    if (!r.stderrTail.empty())
        row.set("stderr_tail", r.stderrTail);
    row.set("ticks", r.ticks);
    row.set("mem_ops", r.memOps);
    row.set("checker_violations", r.checkerViolations);
    row.set("invariant_violations", r.invariantViolations);
    // Host timing is omitted when zero: journal-finalized documents
    // zero it so resumed and uninterrupted runs serialize identically.
    if (r.wallMs != 0)
        row.set("wall_ms", r.wallMs);
    if (r.hostMops != 0)
        row.set("host_mops", r.hostMops);
    Json stats = Json::object();
    for (const auto &kv : r.stats)
        stats.set(kv.first, kv.second);
    row.set("stats", stats);
    return row;
}

bool
rowFromJson(const Json &row, JobResult *out, std::string *err)
{
    if (!row.isObject() || !row["name"].isString()) {
        if (err)
            *err = "row is not an object with a \"name\"";
        return false;
    }
    JobResult r;
    r.name = row["name"].asString();
    r.protocol = row["protocol"].asString();
    r.workload = row["workload"].asString();
    r.topology = row["topology"].asString();
    r.arbitration = row["arbitration"].isString()
                        ? row["arbitration"].asString()
                        : "round_robin";
    r.trace = row["trace"].asString();
    r.partitionFallback = row["partition_fallback"].asString();
    r.procs = unsigned(row["procs"].asNumber());
    r.blockWords = unsigned(row["block_words"].asNumber());
    r.frames = unsigned(row["frames"].asNumber());
    r.seed = std::uint64_t(row["seed"].asNumber());
    r.status = row["status"].isString() ? row["status"].asString()
                                        : "ok";
    r.error = row["error"].asString();
    r.firstViolationTick = Tick(row["first_violation_tick"].asNumber());
    r.failingStat = row["failing_stat"].asString();
    r.attempts = unsigned(row["attempts"].asNumber(1));
    r.retryBackoffMs = row["retry_backoff_ms"].asNumber();
    r.stderrTail = row["stderr_tail"].asString();
    r.ticks = Tick(row["ticks"].asNumber());
    r.memOps = std::uint64_t(row["mem_ops"].asNumber());
    r.checkerViolations = unsigned(row["checker_violations"].asNumber());
    r.invariantViolations =
        unsigned(row["invariant_violations"].asNumber());
    r.wallMs = row["wall_ms"].asNumber();
    r.hostMops = row["host_mops"].asNumber();
    if (!row["stats"].isNull() && !row["stats"].isObject()) {
        if (err)
            *err = "row \"stats\" is not an object";
        return false;
    }
    for (const auto &kv : row["stats"].members()) {
        if (!kv.second.isNumber()) {
            if (err)
                *err = csprintf("row stat \"%s\" is not a number",
                                kv.first.c_str());
            return false;
        }
        r.stats[kv.first] = kv.second.asNumber();
    }
    *out = std::move(r);
    return true;
}

Json
campaignToJson(const CampaignResult &result)
{
    Json doc = Json::object();
    doc.set("csync_campaign", kCampaignVersion);
    doc.set("name", result.name);
    if (!result.specJson.isNull())
        doc.set("spec", result.specJson);
    doc.set("jobs", double(result.rows.size()));
    // Worker count and wall clock are host facts, not simulation
    // results; finalized documents zero them (and omit them here) so
    // the same campaign serializes identically on any machine.
    if (result.workers)
        doc.set("workers", result.workers);
    if (result.wallMs != 0)
        doc.set("wall_ms", result.wallMs);
    doc.set("failures", result.failures());

    Json rows = Json::array();
    for (const auto &r : result.rows)
        rows.push(rowToJson(r));
    doc.set("rows", std::move(rows));
    return doc;
}

bool
campaignFromJson(const Json &doc, CampaignResult *out, std::string *err)
{
    auto loadError = [&](const std::string &what) {
        if (err)
            *err = "campaign document: " + what;
        return false;
    };
    if (!doc.isObject() || !doc["csync_campaign"].isNumber())
        return loadError("missing \"csync_campaign\" version marker");
    if (int(doc["csync_campaign"].asNumber()) != kCampaignVersion) {
        return loadError(csprintf("unsupported version %d",
                                  int(doc["csync_campaign"].asNumber())));
    }
    if (!doc["rows"].isArray())
        return loadError("missing \"rows\" array");

    CampaignResult result;
    result.name = doc["name"].asString();
    result.specJson = doc["spec"];
    result.workers = unsigned(doc["workers"].asNumber());
    result.wallMs = doc["wall_ms"].asNumber();
    for (std::size_t i = 0; i < doc["rows"].size(); ++i) {
        JobResult r;
        std::string rerr;
        if (!rowFromJson(doc["rows"].at(i), &r, &rerr))
            return loadError(csprintf("row %zu: %s", i, rerr.c_str()));
        result.rows.push_back(std::move(r));
    }
    *out = std::move(result);
    return true;
}

void
campaignToCsv(const CampaignResult &result, std::ostream &os)
{
    std::set<std::string> keys;
    for (const auto &r : result.rows)
        for (const auto &kv : r.stats)
            keys.insert(kv.first);

    auto quote = [](const std::string &s) {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        return out + "\"";
    };

    os << "name,protocol,workload,topology,trace,procs,block_words,"
          "frames,seed,status,ticks,mem_ops,wall_ms,host_mops";
    for (const auto &k : keys)
        os << "," << quote(k);
    os << "\n";
    for (const auto &r : result.rows) {
        os << quote(r.name) << "," << quote(r.protocol) << ","
           << quote(r.workload) << "," << quote(r.topology) << ","
           << quote(r.trace) << "," << r.procs << "," << r.blockWords
           << "," << r.frames << "," << r.seed << "," << r.status << ","
           << r.ticks << "," << r.memOps << ","
           << stats::jsonNumber(r.wallMs) << ","
           << stats::jsonNumber(r.hostMops);
        for (const auto &k : keys) {
            os << ",";
            auto it = r.stats.find(k);
            if (it != r.stats.end())
                os << stats::jsonNumber(it->second);
        }
        os << "\n";
    }
}

bool
readFile(const std::string &path, std::string *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content,
          std::string *err)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (err)
            *err = "cannot write " + path;
        return false;
    }
    out << content;
    out.flush();
    if (!out) {
        if (err)
            *err = "write failed for " + path;
        return false;
    }
    return true;
}

} // namespace harness
} // namespace csync
