/**
 * @file
 * Workload construction by name for the campaign harness.  Each named
 * workload is a recipe that, given a processor's slot in the machine
 * and the campaign seed, produces the Workload object for that slot —
 * so a sweep spec can say just "critical_section" and get a sensible,
 * deterministic multi-processor instantiation on any machine size.
 */

#ifndef CSYNC_HARNESS_WORKLOAD_FACTORY_HH
#define CSYNC_HARNESS_WORKLOAD_FACTORY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proc/workload.hh"

namespace csync
{

namespace trace
{
class TraceReplayEngine;
} // namespace trace

namespace harness
{

/** Everything a recipe needs to build one processor's workload. */
struct WorkloadSlot
{
    /** This processor's index. */
    unsigned procId = 0;
    /** Processors in the system. */
    unsigned numProcs = 1;
    /** Operations (or iterations, scaled per recipe) per processor. */
    std::uint64_t ops = 2000;
    /** Campaign seed (mixed with procId per recipe). */
    std::uint64_t seed = 1;
    /** Block size in bytes (address layout). */
    std::uint64_t blockBytes = 32;
    /** Clusters of the machine's topology (1 when flat); the
     *  cluster_local recipe homes each processor's footprint in its
     *  own cluster's address stride. */
    unsigned numClusters = 1;
    /** Protocol the system runs (selects lock algorithm / hints). */
    std::string protocol = "bitar";
    /**
     * Run-scoped slot for the "trace:<path>" recipe: all of a run's
     * processors must share one replay engine, so the caller provides
     * a place to keep it.  The first trace slot built opens the trace
     * and fills the slot; later slots reuse it.  Left null, trace
     * recipes are rejected with an error.
     */
    std::shared_ptr<trace::TraceReplayEngine> *traceEngine = nullptr;
};

/** The prefix selecting trace replay: "trace:<path-to-.ctrace>". */
extern const char kTraceRecipePrefix[];

/** Registered workload names, sorted (the sweep "workloads" axis). */
std::vector<std::string> workloadNames();

/** True if @p name is a registered workload recipe. */
bool workloadKnown(const std::string &name);

/**
 * Build the workload @p name for one processor slot.
 * @return nullptr with *err set if the name is unknown.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadSlot &slot,
                                       std::string *err);

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_WORKLOAD_FACTORY_HH
