/**
 * @file
 * Campaign serialization: one JSON document per campaign (manifest +
 * per-job stat rows), a CSV exporter for spreadsheet work, and the
 * loader the comparison gate uses.  The document format is versioned
 * ("csync_campaign": 1) and deterministic apart from the host timing
 * fields, which the comparison gate ignores.
 */

#ifndef CSYNC_HARNESS_CAMPAIGN_IO_HH
#define CSYNC_HARNESS_CAMPAIGN_IO_HH

#include <ostream>
#include <string>

#include "harness/campaign.hh"
#include "harness/json.hh"

namespace csync
{
namespace harness
{

/** Current campaign document version. */
constexpr int kCampaignVersion = 1;

/**
 * Serialize one row.  Host-timing fields (`wall_ms`, `host_mops`) and
 * retry accounting (`attempts`, `retry_backoff_ms`) are emitted only
 * when set, so documents finalized from a journal — which zeroes host
 * timing — are a pure function of the simulations.
 */
Json rowToJson(const JobResult &row);

/**
 * Reconstruct a row from its document form.
 * @return false with *err set if @p row is not a row object.
 */
bool rowFromJson(const Json &row, JobResult *out, std::string *err);

/** Serialize a finished campaign into its JSON document. */
Json campaignToJson(const CampaignResult &result);

/**
 * Reconstruct the comparable portion of a campaign from its document
 * (rows with status, ticks, and stats; host timing is dropped).
 * @return false with *err set if @p doc is not a campaign document.
 */
bool campaignFromJson(const Json &doc, CampaignResult *out,
                      std::string *err);

/**
 * Export rows as CSV: job metadata columns followed by the sorted
 * union of every stat key (absent stats are empty cells).
 */
void campaignToCsv(const CampaignResult &result, std::ostream &os);

/** Read a whole file. @return false with *err set on I/O failure. */
bool readFile(const std::string &path, std::string *out,
              std::string *err);

/** Write a whole file. @return false with *err set on I/O failure. */
bool writeFile(const std::string &path, const std::string &content,
               std::string *err);

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_CAMPAIGN_IO_HH
