/**
 * @file
 * The campaign engine: run a list of expanded sweep jobs — independent,
 * deterministic simulations — across a pool of worker threads, collect
 * per-job statistics, wall-clock and throughput accounting, and capture
 * per-job failures as error rows instead of letting one bad
 * configuration kill the whole campaign.
 *
 * Result rows land in job-list order regardless of which worker ran
 * what, so a campaign's output is identical at any --jobs level (the
 * simulations themselves are single-threaded and deterministic; the
 * pool only schedules them).
 */

#ifndef CSYNC_HARNESS_CAMPAIGN_HH
#define CSYNC_HARNESS_CAMPAIGN_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace csync
{
namespace harness
{

/** Outcome of one campaign job. */
struct JobResult
{
    /** Row key (JobSpec::name). */
    std::string name;
    /** @name Axis echo (so a row is self-describing) */
    /// @{
    std::string protocol;
    std::string workload;
    unsigned procs = 0;
    unsigned blockWords = 0;
    unsigned frames = 0;
    std::uint64_t seed = 0;
    /// @}

    /** "ok", "timeout", "livelock", or "error". */
    std::string status = "ok";
    /** Failure description when status != "ok". */
    std::string error;
    /** Tick the failure was first observed (0 when ok/unknown). */
    Tick firstViolationTick = 0;
    /** Flattened stat path that flagged the failure ("" when ok). */
    std::string failingStat;

    /** Final simulated time. */
    Tick ticks = 0;
    /** Total processor memory references issued. */
    std::uint64_t memOps = 0;
    /** Value-checker violations observed. */
    unsigned checkerViolations = 0;
    /** Structural invariant violations at end of run. */
    unsigned invariantViolations = 0;

    /** Host wall-clock for this job, milliseconds. */
    double wallMs = 0;
    /** Host throughput, million simulated memory ops per second. */
    double hostMops = 0;

    /** Flattened statistics (stats::flatten of the system root). */
    std::map<std::string, double> stats;

    bool ok() const { return status == "ok"; }
};

/** A finished campaign. */
struct CampaignResult
{
    std::string name;
    /** Spec echo for the manifest (may be Null for ad-hoc job lists). */
    Json specJson;
    /** Worker threads actually used. */
    unsigned workers = 0;
    /** Whole-campaign wall clock, milliseconds. */
    double wallMs = 0;
    /** One row per job, in job-list order. */
    std::vector<JobResult> rows;

    unsigned failures() const;
};

/** Executes job lists on a worker pool. */
class CampaignRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 = hardware_concurrency. */
        unsigned jobs = 0;
        /** Invoked (serialized) as each job finishes: done count,
         *  total, and the finished row. */
        std::function<void(std::size_t, std::size_t, const JobResult &)>
            onJobDone;
    };

    /**
     * Run one job synchronously on the calling thread.  Never throws
     * for configuration/workload errors — they come back as an error
     * row.
     */
    static JobResult runJob(const JobSpec &spec);

    /** Run @p jobs on the pool and collect every row. */
    CampaignResult run(const std::vector<JobSpec> &jobs,
                       const Options &opts);

    CampaignResult
    run(const std::vector<JobSpec> &jobs)
    {
        return run(jobs, Options());
    }
};

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_CAMPAIGN_HH
