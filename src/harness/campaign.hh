/**
 * @file
 * The campaign engine: run a list of expanded sweep jobs — independent,
 * deterministic simulations — across a pool of worker threads, collect
 * per-job statistics, wall-clock and throughput accounting, and capture
 * per-job failures as error rows instead of letting one bad
 * configuration kill the whole campaign.
 *
 * Result rows land in job-list order regardless of which worker ran
 * what, so a campaign's output is identical at any --jobs level (the
 * simulations themselves are single-threaded and deterministic; the
 * pool only schedules them).
 */

#ifndef CSYNC_HARNESS_CAMPAIGN_HH
#define CSYNC_HARNESS_CAMPAIGN_HH

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace csync
{
namespace harness
{

/** Outcome of one campaign job. */
struct JobResult
{
    /** Row key (JobSpec::name). */
    std::string name;
    /** @name Axis echo (so a row is self-describing) */
    /// @{
    std::string protocol;
    std::string workload;
    /** Interconnect preset the job ran on ("single_bus", ...). */
    std::string topology;
    /** Bus arbitration policy the job ran with ("round_robin", ...). */
    std::string arbitration;
    /** Trace file replayed ("" for synthetic workloads). */
    std::string trace;
    /** Why a clustered-topology job would fall back to the serial
     *  engine at --sim-threads >= 2 ("" when it shards).  Computed
     *  from the hypothetical multi-threaded plan, never the live
     *  engine, so rows are identical at every --sim-threads level;
     *  set (and serialized) only on clustered topologies, so
     *  flat-topology campaigns keep their exact shape. */
    std::string partitionFallback;
    unsigned procs = 0;
    unsigned blockWords = 0;
    unsigned frames = 0;
    std::uint64_t seed = 0;
    /// @}

    /**
     * "ok", "timeout" (simulated-time budget), "livelock", "error",
     * "wall_timeout" (host wall-clock deadline), "crashed" (isolated
     * child died), or "skipped" (graceful drain before the job ran).
     */
    std::string status = "ok";
    /** Failure description when status != "ok". */
    std::string error;
    /** Execution attempts (1 unless the harness retried). */
    unsigned attempts = 1;
    /** Total milliseconds slept in retry backoff. */
    double retryBackoffMs = 0;
    /** Tail of the child's stderr ("crashed"/"wall_timeout" rows under
     *  process isolation). */
    std::string stderrTail;
    /** Tick the failure was first observed (0 when ok/unknown). */
    Tick firstViolationTick = 0;
    /** Flattened stat path that flagged the failure ("" when ok). */
    std::string failingStat;

    /** Final simulated time. */
    Tick ticks = 0;
    /** Total processor memory references issued. */
    std::uint64_t memOps = 0;
    /** Value-checker violations observed. */
    unsigned checkerViolations = 0;
    /** Structural invariant violations at end of run. */
    unsigned invariantViolations = 0;

    /** Host wall-clock for this job, milliseconds. */
    double wallMs = 0;
    /** Host throughput, million simulated memory ops per second. */
    double hostMops = 0;

    /** Flattened statistics (stats::flatten of the system root). */
    std::map<std::string, double> stats;

    /** True when the sharded parallel engine actually ran this row
     *  (diagnostic only — never serialized, so campaign documents stay
     *  byte-identical across --sim-threads). */
    bool usedParallel = false;

    bool ok() const { return status == "ok"; }
};

/** A finished campaign. */
struct CampaignResult
{
    std::string name;
    /** Spec echo for the manifest (may be Null for ad-hoc job lists). */
    Json specJson;
    /** Worker threads actually used. */
    unsigned workers = 0;
    /** Whole-campaign wall clock, milliseconds. */
    double wallMs = 0;
    /** True if a graceful drain stopped the run before every job ran
     *  (the unrun jobs carry status "skipped"). */
    bool interrupted = false;
    /** One row per job, in job-list order. */
    std::vector<JobResult> rows;

    unsigned failures() const;
};

/** Executes job lists on a worker pool. */
class CampaignRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 = hardware_concurrency. */
        unsigned jobs = 0;
        /** Invoked (serialized) as each job finishes: done count,
         *  total, and the finished row. */
        std::function<void(std::size_t, std::size_t, const JobResult &)>
            onJobDone;
        /**
         * Per-attempt wall-clock deadline, milliseconds (0 = none).
         * Enforced by a harness watchdog thread in-process, or by the
         * parent's poll loop (SIGKILL) under isolation.
         */
        double wallDeadlineMs = 0;
        /** Extra attempts granted to host-side failures — wall-clock
         *  timeouts and crashed children.  Deterministic simulation
         *  outcomes (ok/timeout/livelock/error) never retry. */
        unsigned maxRetries = 0;
        /** Delay before the first retry, milliseconds; doubles each
         *  further retry (exponential backoff). */
        double retryBackoffMs = 100.0;
        /** Run every attempt in a forked child process, so a crashing
         *  or aborting simulation becomes a "crashed" row instead of
         *  killing the campaign (POSIX only). */
        bool isolate = false;
        /**
         * Graceful-drain flag (e.g. set from a SIGINT handler):
         * workers stop claiming new jobs once it reads true; in-flight
         * jobs finish or hit their deadline, and unrun jobs come back
         * as "skipped" rows with CampaignResult::interrupted set.
         */
        const std::atomic<bool> *stop = nullptr;
        /** Test seam: replaces job execution entirely (retry/backoff,
         *  drain, and journaling logic still apply). */
        std::function<JobResult(const JobSpec &, unsigned attempt)>
            executor;
    };

    /**
     * Run one job synchronously on the calling thread.  Never throws
     * for configuration/workload errors — they come back as an error
     * row.  If @p cancel becomes true mid-run the simulation stops at
     * the next event batch and the row is marked "wall_timeout".
     *
     * Parallel runs (config.simThreads > 1 on a partitionable config)
     * that end in anything but a clean completion are rerun on the
     * serial engine: anomaly forensics (livelock diagnostics, timeout
     * ticks) depend on observation cadence, and the serial engine's is
     * canonical — so every finalized row, healthy or not, is
     * byte-identical to a --sim-threads 1 campaign.
     */
    static JobResult runJob(const JobSpec &spec,
                            const std::atomic<bool> *cancel = nullptr);

    /** One attempt of runJob, with no serial-rerun policy.  @p force_serial
     *  drops simThreads to 1 (the rerun path; also useful in tests). */
    static JobResult runJobOnce(const JobSpec &spec,
                                const std::atomic<bool> *cancel,
                                bool force_serial);

    /** Run @p jobs on the pool and collect every row. */
    CampaignResult run(const std::vector<JobSpec> &jobs,
                       const Options &opts);

    CampaignResult
    run(const std::vector<JobSpec> &jobs)
    {
        return run(jobs, Options());
    }
};

/** A row pre-filled with @p spec's axis echo (no results yet). */
JobResult rowForSpec(const JobSpec &spec);

} // namespace harness
} // namespace csync

#endif // CSYNC_HARNESS_CAMPAIGN_HH
