/**
 * @file
 * The `.ctrace` binary format: a compact, versioned container for
 * captured multithreaded program traces (SynchroTrace-style per-thread
 * event streams).  The layout is built for streaming — a reader never
 * needs more than one chunk per thread in memory, however large the
 * trace:
 *
 *   header          magic, version, thread count, flags, totals
 *   thread table    per thread: event count + offset of its first chunk
 *   chunks          per-thread event runs; each chunk links to the same
 *                   thread's next chunk, so readers seek along a
 *                   per-thread chain instead of scanning the file
 *
 * Events are a kind byte plus LEB128 varint operands (a multi-million
 * event trace is a few bytes per event).  The vocabulary mirrors what a
 * pthread-level capture tool sees:
 *
 *   Compute(delay)        local work, no memory traffic
 *   Read(addr)/Write(addr) one shared-memory reference
 *   Lock(addr)/Unlock(addr) pthread_mutex/spinlock acquire + release;
 *                         replay translates these into the active
 *                         protocol's sync primitives
 *   Barrier(id, n)        pthread_barrier_wait across n threads
 *   Dep(thread, count)    happens-before edge: stall this thread until
 *                         @p thread has retired @p count events
 *
 * All integers are little-endian and written byte-by-byte, so a trace
 * generated with a given seed is byte-identical on any host.
 */

#ifndef CSYNC_TRACE_FORMAT_HH
#define CSYNC_TRACE_FORMAT_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace csync
{
namespace trace
{

/** File magic, bytes "CTRC" on disk. */
constexpr std::uint32_t kMagic = 0x43525443u;

/** Per-chunk marker, bytes "CHNK" on disk (truncation tripwire). */
constexpr std::uint32_t kChunkMagic = 0x4b4e4843u;

/** Current format version. */
constexpr std::uint32_t kVersion = 1;

/** Fixed header size in bytes (thread table follows). */
constexpr std::uint64_t kHeaderBytes = 32;

/** Bytes per thread-table entry: event count + first-chunk offset. */
constexpr std::uint64_t kTableEntryBytes = 16;

/** Chunk header size in bytes (payload follows). */
constexpr std::uint64_t kChunkHeaderBytes = 24;

/** Header flag bits (what the trace contains; replay checks support
 *  up front instead of failing mid-stream). */
enum HeaderFlag : std::uint32_t
{
    kFlagHasLocks = 1u << 0,
    kFlagHasBarriers = 1u << 1,
    kFlagHasDeps = 1u << 2,
};

/** Kinds of trace events. */
enum class EventKind : std::uint8_t
{
    Compute = 0,
    Read = 1,
    Write = 2,
    Lock = 3,
    Unlock = 4,
    Barrier = 5,
    Dep = 6,
};

/** Number of distinct event kinds. */
constexpr unsigned kNumEventKinds = 7;

/** Name of an event kind ("compute", "read", ...). */
const char *eventKindName(EventKind k);

/** One decoded trace event.  Operand meaning depends on the kind:
 *  Compute: a=delay; Read/Write/Lock/Unlock: a=addr;
 *  Barrier: a=id, b=participants; Dep: a=thread, b=retired count. */
struct TraceEvent
{
    EventKind kind = EventKind::Compute;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    static TraceEvent
    compute(Tick delay)
    {
        return {EventKind::Compute, delay, 0};
    }

    static TraceEvent read(Addr addr) { return {EventKind::Read, addr, 0}; }

    static TraceEvent
    write(Addr addr)
    {
        return {EventKind::Write, addr, 0};
    }

    static TraceEvent lock(Addr addr) { return {EventKind::Lock, addr, 0}; }

    static TraceEvent
    unlock(Addr addr)
    {
        return {EventKind::Unlock, addr, 0};
    }

    static TraceEvent
    barrier(std::uint64_t id, std::uint64_t participants)
    {
        return {EventKind::Barrier, id, participants};
    }

    static TraceEvent
    dep(unsigned thread, std::uint64_t count)
    {
        return {EventKind::Dep, thread, count};
    }
};

/** Decoded file header (plus the thread table, read separately). */
struct TraceHeader
{
    std::uint32_t version = kVersion;
    std::uint32_t numThreads = 0;
    std::uint32_t flags = 0;
    std::uint64_t totalEvents = 0;
    std::uint32_t chunkCount = 0;

    bool hasLocks() const { return flags & kFlagHasLocks; }
    bool hasBarriers() const { return flags & kFlagHasBarriers; }
    bool hasDeps() const { return flags & kFlagHasDeps; }
};

/** @name Little-endian scalar and LEB128 varint codec
 *  Append/decode helpers shared by the writer and reader. */
/// @{
void putU32(std::string &out, std::uint32_t v);
void putU64(std::string &out, std::uint64_t v);
void putVarint(std::string &out, std::uint64_t v);

/** @return false when fewer than 4/8 bytes remain. */
bool getU32(const std::string &buf, std::size_t &pos, std::uint32_t *v);
bool getU64(const std::string &buf, std::size_t &pos, std::uint64_t *v);

/** @return false on a truncated or over-long (>10 byte) varint. */
bool getVarint(const std::string &buf, std::size_t &pos,
               std::uint64_t *v);
/// @}

/** Append one encoded event to @p out. */
void encodeEvent(std::string &out, const TraceEvent &ev);

/**
 * Decode one event from @p buf at @p pos.
 * @return false with *err set on a malformed or truncated event.
 */
bool decodeEvent(const std::string &buf, std::size_t &pos,
                 TraceEvent *ev, std::string *err);

} // namespace trace
} // namespace csync

#endif // CSYNC_TRACE_FORMAT_HH
