#include "trace/reader.hh"

#include "sim/logging.hh"

namespace csync
{
namespace trace
{

namespace
{

/** Read exactly @p n bytes at @p offset into @p out. */
bool
readAt(std::ifstream &in, std::uint64_t offset, std::size_t n,
       std::string *out)
{
    out->resize(n);
    in.clear();
    in.seekg(std::streamoff(offset));
    in.read(&(*out)[0], std::streamsize(n));
    return std::size_t(in.gcount()) == n;
}

} // anonymous namespace

bool
TraceReader::open(const std::string &path, std::string *err)
{
    sim_assert(err, "trace reader needs an error sink");
    in_.open(path, std::ios::in | std::ios::binary);
    if (!in_) {
        *err = "cannot open trace file '" + path + "'";
        return false;
    }
    path_ = path;
    in_.seekg(0, std::ios::end);
    fileBytes_ = std::uint64_t(in_.tellg());

    std::string hdr;
    if (!readAt(in_, 0, kHeaderBytes, &hdr)) {
        *err = csprintf("truncated trace '%s': %llu bytes, header "
                        "needs %llu",
                        path.c_str(), (unsigned long long)fileBytes_,
                        (unsigned long long)kHeaderBytes);
        return false;
    }
    std::size_t pos = 0;
    std::uint32_t magic = 0, reserved = 0;
    getU32(hdr, pos, &magic);
    getU32(hdr, pos, &header_.version);
    getU32(hdr, pos, &header_.numThreads);
    getU32(hdr, pos, &header_.flags);
    getU64(hdr, pos, &header_.totalEvents);
    getU32(hdr, pos, &header_.chunkCount);
    getU32(hdr, pos, &reserved);
    if (magic != kMagic) {
        *err = csprintf("not a csync trace: bad magic 0x%08x in '%s' "
                        "(expected 0x%08x \"CTRC\")",
                        magic, path.c_str(), kMagic);
        return false;
    }
    if (header_.version != kVersion) {
        *err = csprintf("unsupported trace version %u in '%s' (this "
                        "build reads version %u)",
                        header_.version, path.c_str(), kVersion);
        return false;
    }
    if (header_.numThreads == 0) {
        *err = csprintf("corrupt trace '%s': zero threads", path.c_str());
        return false;
    }
    std::uint64_t table_bytes =
        std::uint64_t(header_.numThreads) * kTableEntryBytes;
    if (kHeaderBytes + table_bytes > fileBytes_) {
        *err = csprintf("truncated trace '%s': thread table for %u "
                        "threads runs past end of file",
                        path.c_str(), header_.numThreads);
        return false;
    }
    std::string table;
    if (!readAt(in_, kHeaderBytes, std::size_t(table_bytes), &table)) {
        *err = csprintf("I/O error reading thread table of '%s'",
                        path.c_str());
        return false;
    }
    cursors_.assign(header_.numThreads, Cursor());
    pos = 0;
    std::uint64_t events_sum = 0;
    for (unsigned t = 0; t < header_.numThreads; ++t) {
        Cursor &c = cursors_[t];
        getU64(table, pos, &c.tableEvents);
        getU64(table, pos, &c.nextChunk);
        events_sum += c.tableEvents;
        if (c.nextChunk == 0 && c.tableEvents != 0) {
            *err = csprintf("corrupt trace '%s': thread %u claims %llu "
                            "events but has no chunks",
                            path.c_str(), t,
                            (unsigned long long)c.tableEvents);
            return false;
        }
        if (c.nextChunk != 0 &&
            c.nextChunk + kChunkHeaderBytes > fileBytes_) {
            *err = csprintf("corrupt trace '%s': thread %u's first "
                            "chunk offset %llu runs past end of file",
                            path.c_str(), t,
                            (unsigned long long)c.nextChunk);
            return false;
        }
    }
    if (events_sum != header_.totalEvents) {
        *err = csprintf("corrupt trace '%s': header counts %llu events "
                        "but the thread table sums to %llu",
                        path.c_str(),
                        (unsigned long long)header_.totalEvents,
                        (unsigned long long)events_sum);
        return false;
    }
    return true;
}

void
TraceReader::releasePayload(Cursor &c)
{
    resident_ -= c.payload.size();
    c.payload.clear();
    c.payload.shrink_to_fit();
    c.pos = 0;
}

bool
TraceReader::loadChunk(unsigned thread, std::string *err)
{
    Cursor &c = cursors_[thread];
    std::uint64_t at = c.nextChunk;
    std::string hdr;
    if (!readAt(in_, at, kChunkHeaderBytes, &hdr)) {
        *err = csprintf("truncated trace '%s': chunk header at offset "
                        "%llu runs past end of file",
                        path_.c_str(), (unsigned long long)at);
        return false;
    }
    std::size_t pos = 0;
    std::uint32_t magic = 0, owner = 0, events = 0, payload_bytes = 0;
    std::uint64_t next = 0;
    getU32(hdr, pos, &magic);
    getU32(hdr, pos, &owner);
    getU32(hdr, pos, &events);
    getU32(hdr, pos, &payload_bytes);
    getU64(hdr, pos, &next);
    if (magic != kChunkMagic) {
        *err = csprintf("corrupt trace '%s': bad chunk marker 0x%08x "
                        "at offset %llu (expected \"CHNK\")",
                        path_.c_str(), magic, (unsigned long long)at);
        return false;
    }
    if (owner != thread) {
        *err = csprintf("corrupt trace '%s': chunk at offset %llu "
                        "belongs to thread %u but is chained to "
                        "thread %u",
                        path_.c_str(), (unsigned long long)at, owner, thread);
        return false;
    }
    if (events == 0) {
        *err = csprintf("corrupt trace '%s': empty chunk at offset "
                        "%llu",
                        path_.c_str(), (unsigned long long)at);
        return false;
    }
    if (at + kChunkHeaderBytes + payload_bytes > fileBytes_) {
        *err = csprintf("truncated trace '%s': chunk at offset %llu "
                        "declares %u payload bytes but the file ends "
                        "mid-chunk",
                        path_.c_str(), (unsigned long long)at, payload_bytes);
        return false;
    }
    releasePayload(c);
    if (!readAt(in_, at + kChunkHeaderBytes, payload_bytes,
                &c.payload)) {
        *err = csprintf("I/O error reading chunk at offset %llu of "
                        "'%s'",
                        (unsigned long long)at, path_.c_str());
        return false;
    }
    resident_ += c.payload.size();
    if (resident_ > maxResident_)
        maxResident_ = resident_;
    c.pos = 0;
    c.chunkRemaining = events;
    c.chunkOffset = at;
    c.nextChunk = next;
    return true;
}

TraceReader::Status
TraceReader::next(unsigned thread, TraceEvent *ev, std::string *err)
{
    sim_assert(thread < cursors_.size(), "thread %u of %zu", thread,
               cursors_.size());
    Cursor &c = cursors_[thread];
    if (c.chunkRemaining == 0) {
        if (c.nextChunk == 0) {
            if (c.eventsRead != c.tableEvents) {
                *err = csprintf(
                    "corrupt trace '%s': thread %u's chunk chain "
                    "holds %llu events but the thread table "
                    "promises %llu",
                    path_.c_str(), thread, (unsigned long long)c.eventsRead,
                    (unsigned long long)c.tableEvents);
                return Status::Error;
            }
            releasePayload(c);
            return Status::End;
        }
        if (!loadChunk(thread, err))
            return Status::Error;
    }
    std::string dec_err;
    if (!decodeEvent(c.payload, c.pos, ev, &dec_err)) {
        *err = csprintf("%s (thread %u, chunk at offset %llu of '%s')",
                        dec_err.c_str(), thread,
                        (unsigned long long)c.chunkOffset, path_.c_str());
        return Status::Error;
    }
    if (ev->kind == EventKind::Dep && ev->a >= header_.numThreads) {
        *err = csprintf("corrupt trace '%s': thread %u depends on "
                        "nonexistent thread %llu (trace has %u "
                        "threads)",
                        path_.c_str(), thread, (unsigned long long)ev->a,
                        header_.numThreads);
        return Status::Error;
    }
    --c.chunkRemaining;
    ++c.eventsRead;
    if (c.chunkRemaining == 0 && c.pos != c.payload.size()) {
        *err = csprintf("corrupt trace '%s': chunk at offset %llu has "
                        "%zu bytes of trailing garbage",
                        path_.c_str(), (unsigned long long)c.chunkOffset,
                        c.payload.size() - c.pos);
        return Status::Error;
    }
    return Status::Event;
}

bool
TraceReader::validate(std::string *err, TraceStats *stats)
{
    TraceStats local;
    TraceStats *s = stats ? stats : &local;
    for (unsigned t = 0; t < header_.numThreads; ++t) {
        sim_assert(cursors_[t].eventsRead == 0,
                   "validate on a partially consumed reader");
        for (;;) {
            TraceEvent ev;
            Status st = next(t, &ev, err);
            if (st == Status::Error)
                return false;
            if (st == Status::End)
                break;
            ++s->byKind[unsigned(ev.kind)];
            ++s->total;
        }
    }
    return true;
}

} // namespace trace
} // namespace csync
