#include "trace/format.hh"

#include "sim/logging.hh"

namespace csync
{
namespace trace
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Compute:
        return "compute";
      case EventKind::Read:
        return "read";
      case EventKind::Write:
        return "write";
      case EventKind::Lock:
        return "lock";
      case EventKind::Unlock:
        return "unlock";
      case EventKind::Barrier:
        return "barrier";
      case EventKind::Dep:
        return "dep";
    }
    return "?";
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(char((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(char(v));
}

bool
getU32(const std::string &buf, std::size_t &pos, std::uint32_t *v)
{
    if (pos + 4 > buf.size())
        return false;
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i)
        r |= std::uint32_t(std::uint8_t(buf[pos + i])) << (8 * i);
    pos += 4;
    *v = r;
    return true;
}

bool
getU64(const std::string &buf, std::size_t &pos, std::uint64_t *v)
{
    if (pos + 8 > buf.size())
        return false;
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i)
        r |= std::uint64_t(std::uint8_t(buf[pos + i])) << (8 * i);
    pos += 8;
    *v = r;
    return true;
}

bool
getVarint(const std::string &buf, std::size_t &pos, std::uint64_t *v)
{
    std::uint64_t r = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= buf.size())
            return false;
        std::uint8_t byte = std::uint8_t(buf[pos++]);
        r |= std::uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            *v = r;
            return true;
        }
    }
    return false; // over-long encoding
}

void
encodeEvent(std::string &out, const TraceEvent &ev)
{
    out.push_back(char(ev.kind));
    putVarint(out, ev.a);
    if (ev.kind == EventKind::Barrier || ev.kind == EventKind::Dep)
        putVarint(out, ev.b);
}

bool
decodeEvent(const std::string &buf, std::size_t &pos, TraceEvent *ev,
            std::string *err)
{
    if (pos >= buf.size()) {
        *err = "truncated trace: event runs past its chunk";
        return false;
    }
    std::uint8_t kind = std::uint8_t(buf[pos++]);
    if (kind >= kNumEventKinds) {
        *err = csprintf("corrupt trace: unknown event kind %u at chunk "
                        "byte %zu",
                        kind, pos - 1);
        return false;
    }
    ev->kind = EventKind(kind);
    ev->b = 0;
    if (!getVarint(buf, pos, &ev->a)) {
        *err = "truncated trace: event runs past its chunk";
        return false;
    }
    if (ev->kind == EventKind::Barrier || ev->kind == EventKind::Dep) {
        if (!getVarint(buf, pos, &ev->b)) {
            *err = "truncated trace: event runs past its chunk";
            return false;
        }
    }
    return true;
}

} // namespace trace
} // namespace csync
