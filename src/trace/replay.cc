#include "trace/replay.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace csync
{
namespace trace
{

namespace
{

/** Think cycles between spin reads of a test-and-test-and-set
 *  acquire, matching the synthetic lock workloads. */
constexpr Tick kSpinGap = 2;

} // anonymous namespace

/**
 * The Workload face of the engine: round-robins over the threads
 * mapped to one processor, forwarding ops and results to the shared
 * engine.
 */
class TraceReplayWorkload : public Workload
{
  public:
    TraceReplayWorkload(TraceReplayEngine *engine, unsigned proc,
                        std::vector<unsigned> threads)
        : engine_(engine), proc_(proc), threads_(std::move(threads))
    {
        engine_->workloads_[proc_] = this;
    }

    ~TraceReplayWorkload() override
    {
        if (engine_->workloads_[proc_] == this)
            engine_->workloads_[proc_] = nullptr;
    }

    NextStatus
    next(MemOp &op, Tick &think) override
    {
        for (std::size_t scan = 0; scan < threads_.size(); ++scan) {
            unsigned t = threads_[rr_];
            rr_ = (rr_ + 1) % threads_.size();
            if (engine_->emitOp(t, &op, &think)) {
                curThread_ = t;
                return NextStatus::Op;
            }
        }
        if (done())
            return NextStatus::Finished;
        engine_->maybeReportDeadlock();
        return NextStatus::Stalled;
    }

    void
    onResult(const MemOp &op, const AccessResult &r) override
    {
        engine_->onOpResult(curThread_, op, r);
    }

    void
    setWakeHook(std::function<void()> hook) override
    {
        wakeHook_ = std::move(hook);
    }

    std::string
    describe() const override
    {
        return csprintf("trace-replay(%s, proc %u, %zu threads, %s)",
                        engine_->path().c_str(), proc_,
                        threads_.size(),
                        lockAlgName(engine_->lockAlg()));
    }

    bool
    done() const override
    {
        for (unsigned t : threads_) {
            if (!engine_->threadDone(t))
                return false;
        }
        return true;
    }

    void
    fireWake()
    {
        if (wakeHook_)
            wakeHook_();
    }

  private:
    TraceReplayEngine *engine_;
    unsigned proc_;
    std::vector<unsigned> threads_;
    std::size_t rr_ = 0;
    unsigned curThread_ = 0;
    std::function<void()> wakeHook_;
};

TraceReplayEngine::TraceReplayEngine() = default;
TraceReplayEngine::~TraceReplayEngine() = default;

bool
TraceReplayEngine::open(const std::string &path, std::string *err)
{
    if (!reader_.open(path, err))
        return false;
    threads_.resize(reader_.numThreads());
    return true;
}

void
TraceReplayEngine::configure(unsigned num_procs, LockAlg lock_alg)
{
    sim_assert(!threads_.empty(), "configure before open");
    sim_assert(!configured_, "engine configured twice");
    sim_assert(num_procs > 0, "replay needs at least one processor");
    configured_ = true;
    numProcs_ = num_procs;
    lockAlg_ = lock_alg;
    procThreads_.resize(num_procs);
    workloads_.assign(num_procs, nullptr);
    for (unsigned t = 0; t < threads_.size(); ++t) {
        threads_[t].proc = t % num_procs;
        procThreads_[t % num_procs].push_back(t);
    }
}

std::unique_ptr<Workload>
TraceReplayEngine::makeWorkload(unsigned proc_id)
{
    sim_assert(configured_, "makeWorkload before configure");
    sim_assert(proc_id < numProcs_, "processor %u of %u", proc_id,
               numProcs_);
    return std::make_unique<TraceReplayWorkload>(
        this, proc_id, procThreads_[proc_id]);
}

std::uint64_t
TraceReplayEngine::retiredEvents(unsigned thread) const
{
    return threads_.at(thread).retired;
}

std::uint64_t
TraceReplayEngine::totalRetired() const
{
    std::uint64_t n = 0;
    for (const auto &ts : threads_)
        n += ts.retired;
    return n;
}

bool
TraceReplayEngine::threadDone(unsigned thread) const
{
    return threads_.at(thread).status == Status::Done;
}

void
TraceReplayEngine::wakeProc(unsigned proc)
{
    if (workloads_[proc])
        workloads_[proc]->fireWake();
}

LockDriver &
TraceReplayEngine::driverFor(ThreadState &ts, Addr addr)
{
    auto it = ts.locks.find(addr);
    if (it == ts.locks.end())
        it = ts.locks.emplace(addr, LockDriver(lockAlg_)).first;
    return it->second;
}

bool
TraceReplayEngine::emitOp(unsigned thread, MemOp *op, Tick *think)
{
    ThreadState &ts = threads_[thread];
    if (ts.status != Status::Runnable || ts.opInFlight)
        return false;
    for (;;) {
        if (!ts.curValid) {
            std::string err;
            auto st = reader_.next(thread, &ts.cur, &err);
            if (st == TraceReader::Status::Error)
                fatal("%s", err.c_str());
            if (st == TraceReader::Status::End) {
                ts.status = Status::Done;
                return false;
            }
            ts.curValid = true;
        }
        switch (ts.cur.kind) {
          case EventKind::Compute:
            ts.pendingThink += ts.cur.a;
            retire(thread);
            continue;

          case EventKind::Dep:
            if (threads_[unsigned(ts.cur.a)].retired >= ts.cur.b) {
                retire(thread);
                continue;
            }
            ts.status = Status::DepWait;
            return false;

          case EventKind::Barrier:
            if (arriveBarrier(thread))
                continue;
            return false;

          case EventKind::Read:
            *op = MemOp{OpType::Read, wordAlign(ts.cur.a), 0, false};
            *think = ts.pendingThink;
            ts.pendingThink = 0;
            ts.phase = Phase::Plain;
            ts.opInFlight = true;
            return true;

          case EventKind::Write: {
            // The trace records no data values; synthesize a value
            // that is a pure function of (thread, position) so replay
            // is deterministic and the coherence checker still
            // validates reader-sees-last-write end to end.
            Word v = (Word(thread + 1) << 32) ^ Word(ts.retired + 1);
            *op = MemOp{OpType::Write, wordAlign(ts.cur.a), v, false};
            *think = ts.pendingThink;
            ts.pendingThink = 0;
            ts.phase = Phase::Plain;
            ts.opInFlight = true;
            return true;
          }

          case EventKind::Lock: {
            Addr addr = wordAlign(ts.cur.a);
            LockDriver &drv = driverFor(ts, addr);
            if (!drv.acquiring()) {
                if (drv.held()) {
                    fatal("trace replay: thread %u locks 0x%llx "
                          "twice without unlocking it",
                          thread, (unsigned long long)addr);
                }
                drv.beginAcquire(addr);
            }
            bool have = drv.acquireOp(*op);
            sim_assert(have, "blocking lock acquire produced no op");
            *think = ts.pendingThink;
            ts.pendingThink = 0;
            if (op->type == OpType::Read)
                *think += kSpinGap;
            ts.phase = Phase::Acquiring;
            ts.syncAddr = addr;
            ts.opInFlight = true;
            return true;
          }

          case EventKind::Unlock: {
            Addr addr = wordAlign(ts.cur.a);
            auto it = ts.locks.find(addr);
            if (it == ts.locks.end() || !it->second.held()) {
                fatal("trace replay: thread %u unlocks 0x%llx, "
                      "which it does not hold",
                      thread, (unsigned long long)addr);
            }
            *op = it->second.releaseOp();
            *think = ts.pendingThink;
            ts.pendingThink = 0;
            ts.phase = Phase::Releasing;
            ts.syncAddr = addr;
            ts.opInFlight = true;
            return true;
          }
        }
        panic("unreachable");
    }
}

void
TraceReplayEngine::onOpResult(unsigned thread, const MemOp &op,
                              const AccessResult &r)
{
    ThreadState &ts = threads_[thread];
    sim_assert(ts.opInFlight, "result for thread %u with no op",
               thread);
    ts.opInFlight = false;
    switch (ts.phase) {
      case Phase::Plain:
        retire(thread);
        return;

      case Phase::Acquiring: {
        LockDriver &drv = driverFor(ts, ts.syncAddr);
        drv.onResult(op, r);
        if (drv.held()) {
            ts.phase = Phase::Plain;
            retire(thread);
        }
        // Otherwise the acquire retries (spin/RMW) on the thread's
        // next turn; the Lock event stays current.
        return;
      }

      case Phase::Releasing: {
        driverFor(ts, ts.syncAddr).onReleased();
        ts.phase = Phase::Plain;
        retire(thread);
        return;
      }
    }
}

void
TraceReplayEngine::retire(unsigned thread)
{
    ThreadState &ts = threads_[thread];
    sim_assert(ts.curValid, "retire with no current event");
    ts.curValid = false;
    ++ts.retired;
    // Wake any thread whose dependency on this one is now satisfied.
    for (auto &us : threads_) {
        if (us.status == Status::DepWait && us.curValid &&
            unsigned(us.cur.a) == thread && ts.retired >= us.cur.b) {
            us.status = Status::Runnable;
            wakeProc(us.proc);
        }
    }
}

bool
TraceReplayEngine::arriveBarrier(unsigned thread)
{
    ThreadState &ts = threads_[thread];
    std::uint64_t id = ts.cur.a;
    std::uint64_t n = ts.cur.b;
    if (n == 0 || n > threads_.size()) {
        fatal("trace replay: barrier %llu declares %llu participants "
              "(trace has %zu threads)",
              (unsigned long long)id, (unsigned long long)n,
              threads_.size());
    }
    BarrierState &b = barriers_[id];
    if (b.arrived.empty()) {
        b.expected = n;
    } else if (b.expected != n) {
        fatal("trace replay: barrier %llu arrived with %llu "
              "participants by thread %u but %llu earlier",
              (unsigned long long)id, (unsigned long long)n, thread,
              (unsigned long long)b.expected);
    }
    b.arrived.push_back(thread);
    if (b.arrived.size() < b.expected) {
        ts.status = Status::BarrierWait;
        return false;
    }
    // Last arrival: release everyone, retiring their barrier events.
    std::vector<unsigned> members = std::move(b.arrived);
    barriers_.erase(id);
    for (unsigned u : members) {
        threads_[u].status = Status::Runnable;
        retire(u);
        if (u != thread)
            wakeProc(threads_[u].proc);
    }
    return true;
}

void
TraceReplayEngine::maybeReportDeadlock()
{
    unsigned unfinished = 0;
    for (const auto &ts : threads_) {
        if (ts.status == Status::Done)
            continue;
        ++unfinished;
        if (ts.status == Status::Runnable || ts.opInFlight)
            return; // something can still make progress
    }
    if (unfinished == 0)
        return;
    std::string who;
    for (unsigned t = 0; t < threads_.size(); ++t) {
        const ThreadState &ts = threads_[t];
        if (ts.status == Status::DepWait) {
            who += csprintf(
                "%sthread %u waits for thread %llu to retire %llu "
                "events (it has retired %llu)",
                who.empty() ? "" : "; ", t,
                (unsigned long long)ts.cur.a,
                (unsigned long long)ts.cur.b,
                (unsigned long long)threads_[unsigned(ts.cur.a)]
                    .retired);
        } else if (ts.status == Status::BarrierWait) {
            auto it = barriers_.find(ts.cur.a);
            who += csprintf(
                "%sthread %u waits at barrier %llu (%zu of %llu "
                "arrived)",
                who.empty() ? "" : "; ", t,
                (unsigned long long)ts.cur.a,
                it == barriers_.end() ? std::size_t(0)
                                      : it->second.arrived.size(),
                (unsigned long long)ts.cur.b);
        }
    }
    fatal("trace replay deadlocked in '%s': %s", path().c_str(),
          who.c_str());
}

} // namespace trace
} // namespace csync
