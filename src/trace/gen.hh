/**
 * @file
 * Seeded synthetic trace generation: pthread-style kernels rendered
 * into the `.ctrace` format so the replay path can be exercised (and
 * regression-tested) without a real capture tool.  Generation is a
 * pure function of the parameters — the same seed produces the same
 * bytes on any host.
 *
 * Address layout matches the machine presets: locks and other
 * synchronization words sit below the two_switch topology's 16 MiB
 * class split (they travel the synchronization bus), shared data sits
 * above it, and per-thread private regions are far above both.
 */

#ifndef CSYNC_TRACE_GEN_HH
#define CSYNC_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace csync
{
namespace trace
{

/** Parameters of one synthetic trace. */
struct GenParams
{
    /** Kernel name (see genKernelNames()). */
    std::string kernel = "mix";
    /** Trace threads. */
    unsigned threads = 4;
    /** Approximate total events (rounded to whole iterations). */
    std::uint64_t events = 10000;
    /** Generation seed (think times, address jitter). */
    std::uint64_t seed = 1;
    /** Events per chunk in the emitted file. */
    unsigned chunkEvents = 4096;
};

/** Registered kernel names, sorted. */
std::vector<std::string> genKernelNames();

/** True if @p kernel is a registered kernel. */
bool genKernelKnown(const std::string &kernel);

/**
 * Generate the trace described by @p p into @p path.
 * @return false with *err set on an unknown kernel, bad parameters,
 *         or an I/O failure.
 */
bool generateTrace(const GenParams &p, const std::string &path,
                   std::string *err);

} // namespace trace
} // namespace csync

#endif // CSYNC_TRACE_GEN_HH
