/**
 * @file
 * Streaming `.ctrace` reader.  Each thread has an independent cursor
 * that follows its chunk chain through the file, holding at most one
 * decoded chunk payload in memory — replaying a multi-million-event
 * trace never materializes it.  Every malformed input (bad magic,
 * unsupported version, truncated chunk, dependency on a nonexistent
 * thread, ...) fails with a distinct, precise error message rather
 * than a crash or a hang.
 */

#ifndef CSYNC_TRACE_READER_HH
#define CSYNC_TRACE_READER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace csync
{
namespace trace
{

/** Per-kind event totals gathered by a validating scan. */
struct TraceStats
{
    std::uint64_t byKind[kNumEventKinds] = {};
    std::uint64_t total = 0;
};

/** Reads one `.ctrace` file as per-thread event streams. */
class TraceReader
{
  public:
    /** Outcome of next(). */
    enum class Status
    {
        /** *ev holds the thread's next event. */
        Event,
        /** The thread's stream is exhausted. */
        End,
        /** Malformed input; *err describes it. */
        Error,
    };

    /**
     * Open @p path and validate the header and thread table.
     * @return false with *err set on any malformed input.
     */
    bool open(const std::string &path, std::string *err);

    const TraceHeader &header() const { return header_; }
    const std::string &path() const { return path_; }
    std::uint32_t numThreads() const { return header_.numThreads; }

    /** Events in @p thread's stream (thread table). */
    std::uint64_t threadEvents(unsigned thread) const
    {
        return cursors_.at(thread).tableEvents;
    }

    /** Produce @p thread's next event, streaming chunks on demand. */
    Status next(unsigned thread, TraceEvent *ev, std::string *err);

    /**
     * Stream every thread to completion, checking chunk chains, event
     * encodings, dependency targets, and per-thread/total event counts.
     * Usable only on a freshly opened reader.
     * @return false with *err set on the first problem found.
     */
    bool validate(std::string *err, TraceStats *stats = nullptr);

    /** Chunk payload bytes currently resident across all cursors. */
    std::uint64_t residentPayloadBytes() const { return resident_; }

    /** High-water mark of residentPayloadBytes() (streaming proof). */
    std::uint64_t maxResidentPayloadBytes() const { return maxResident_; }

  private:
    struct Cursor
    {
        std::uint64_t tableEvents = 0;
        std::uint64_t nextChunk = 0; // 0 = no further chunks
        std::string payload;
        std::size_t pos = 0;
        std::uint32_t chunkRemaining = 0;
        std::uint64_t eventsRead = 0;
        std::uint64_t chunkOffset = 0; // of the loaded chunk (errors)
    };

    bool loadChunk(unsigned thread, std::string *err);
    void releasePayload(Cursor &c);

    std::ifstream in_;
    std::string path_;
    std::uint64_t fileBytes_ = 0;
    TraceHeader header_;
    std::vector<Cursor> cursors_;
    std::uint64_t resident_ = 0;
    std::uint64_t maxResident_ = 0;
};

} // namespace trace
} // namespace csync

#endif // CSYNC_TRACE_READER_HH
