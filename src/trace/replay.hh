/**
 * @file
 * Trace-driven workload replay.  A TraceReplayEngine streams one
 * `.ctrace` file and drives one Workload per processor; when the trace
 * has more threads than the machine has processors, threads are
 * multiplexed round-robin (thread t runs on processor t mod P).  The
 * engine honours the trace's cross-thread dependency and barrier
 * events by stalling the affected processor (NextStatus::Stalled) and
 * waking it through the workload wake hook once the prerequisite
 * thread has retired far enough, and translates lock/unlock events
 * into the active protocol's synchronization primitives via the same
 * LockDriver the synthetic workloads use.
 */

#ifndef CSYNC_TRACE_REPLAY_HH
#define CSYNC_TRACE_REPLAY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "proc/sync_ops.hh"
#include "proc/workload.hh"
#include "trace/reader.hh"

namespace csync
{
namespace trace
{

class TraceReplayWorkload;

/**
 * Shared replay state for one System run: the streaming reader, the
 * per-thread progress/stall bookkeeping, and the thread-to-processor
 * mapping.  One engine is shared by all of a run's workload instances;
 * a fresh engine is needed per run (the trace is consumed as it
 * streams).
 */
class TraceReplayEngine
{
  public:
    TraceReplayEngine();
    ~TraceReplayEngine();

    /**
     * Open the trace and validate its header.
     * @return false with *err set on a malformed file.
     */
    bool open(const std::string &path, std::string *err);

    /**
     * Fix the machine size and lock algorithm; must be called once,
     * after open() and before the first makeWorkload().
     */
    void configure(unsigned num_procs, LockAlg lock_alg);

    /** Build the workload driving processor @p proc_id's threads. */
    std::unique_ptr<Workload> makeWorkload(unsigned proc_id);

    const TraceHeader &header() const { return reader_.header(); }
    const std::string &path() const { return reader_.path(); }
    unsigned numThreads() const { return reader_.numThreads(); }
    unsigned numProcs() const { return numProcs_; }
    LockAlg lockAlg() const { return lockAlg_; }

    /** Events retired so far by @p thread. */
    std::uint64_t retiredEvents(unsigned thread) const;

    /** Events retired so far across all threads. */
    std::uint64_t totalRetired() const;

    /** Peak chunk bytes the reader held resident (bounded-memory
     *  evidence). */
    std::uint64_t
    maxResidentPayloadBytes() const
    {
        return reader_.maxResidentPayloadBytes();
    }

  private:
    friend class TraceReplayWorkload;

    /** Why a thread is not currently producing ops. */
    enum class Status
    {
        Runnable,
        DepWait,
        BarrierWait,
        Done,
    };

    /** What the op in flight will mean when its result arrives. */
    enum class Phase
    {
        Plain,
        Acquiring,
        Releasing,
    };

    struct ThreadState
    {
        Status status = Status::Runnable;
        Phase phase = Phase::Plain;
        TraceEvent cur;
        bool curValid = false;
        bool opInFlight = false;
        std::uint64_t retired = 0;
        Tick pendingThink = 0;
        unsigned proc = 0;
        /** Lock word of the acquire/release op in flight. */
        Addr syncAddr = 0;
        /** One driver per lock word (traces may nest locks). */
        std::map<Addr, LockDriver> locks;
    };

    struct BarrierState
    {
        std::uint64_t expected = 0;
        std::vector<unsigned> arrived;
    };

    /**
     * Advance @p thread to its next memory operation, retiring
     * compute/dep/barrier events inline.
     * @return true with *op / *think filled, false if the thread is
     *         done, stalled, or already has an op in flight.
     */
    bool emitOp(unsigned thread, MemOp *op, Tick *think);

    /** Deliver the result of @p thread's op in flight. */
    void onOpResult(unsigned thread, const MemOp &op,
                    const AccessResult &r);

    /** Retire @p thread's current event and wake satisfied waiters. */
    void retire(unsigned thread);

    /**
     * Arrive at the current event's barrier.
     * @return true if this arrival released the barrier (the caller's
     *         event is retired and it should continue).
     */
    bool arriveBarrier(unsigned thread);

    /** fatal() with a per-thread stall listing if nothing can ever
     *  make progress again. */
    void maybeReportDeadlock();

    bool threadDone(unsigned thread) const;
    void wakeProc(unsigned proc);
    LockDriver &driverFor(ThreadState &ts, Addr addr);

    TraceReader reader_;
    std::vector<ThreadState> threads_;
    std::map<std::uint64_t, BarrierState> barriers_;
    /** proc -> the threads it multiplexes (t ranges over t%P==proc). */
    std::vector<std::vector<unsigned>> procThreads_;
    /** proc -> its live workload (wake routing); null once destroyed. */
    std::vector<TraceReplayWorkload *> workloads_;
    unsigned numProcs_ = 0;
    LockAlg lockAlg_ = LockAlg::TestTestSet;
    bool configured_ = false;
};

} // namespace trace
} // namespace csync

#endif // CSYNC_TRACE_REPLAY_HH
