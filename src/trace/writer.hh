/**
 * @file
 * Streaming `.ctrace` writer.  Events are appended per thread into an
 * in-memory chunk buffer; when a buffer fills it is flushed to the file
 * and linked into that thread's chunk chain, so writer memory is
 * bounded by (threads x chunk size) no matter how many events the
 * trace holds.  finalize() back-patches the header with the real
 * totals, making the emitted bytes a pure function of the append
 * sequence.
 */

#ifndef CSYNC_TRACE_WRITER_HH
#define CSYNC_TRACE_WRITER_HH

#include <fstream>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace csync
{
namespace trace
{

/** Writes one `.ctrace` file. */
class TraceWriter
{
  public:
    /**
     * Create @p path (truncating) for a trace of @p num_threads
     * threads.  @p chunk_events bounds events per chunk (and thus both
     * writer and reader memory).
     * @return false with *err set if the file cannot be created.
     */
    bool open(const std::string &path, unsigned num_threads,
              unsigned chunk_events = 4096, std::string *err = nullptr);

    /** Append @p ev to @p thread's stream. @p thread must be valid. */
    void append(unsigned thread, const TraceEvent &ev);

    /**
     * Flush all pending chunks and back-patch the header.  The writer
     * is unusable afterwards.
     * @return false with *err set on an I/O failure.
     */
    bool finalize(std::string *err = nullptr);

    /** Events appended so far (all threads). */
    std::uint64_t totalEvents() const { return totalEvents_; }

    /** Header flags accumulated from the appended events. */
    std::uint32_t flags() const { return flags_; }

  private:
    struct ThreadBuf
    {
        std::string payload;
        std::uint32_t events = 0;
        std::uint64_t eventsTotal = 0;
        /** File offset of the u64 to patch with the next chunk's
         *  offset: the thread-table entry first, then the previous
         *  chunk's link field. */
        std::uint64_t patchPos = 0;
    };

    void flushChunk(unsigned thread);

    std::fstream out_;
    std::string path_;
    std::vector<ThreadBuf> threads_;
    unsigned chunkEvents_ = 4096;
    std::uint64_t totalEvents_ = 0;
    std::uint32_t chunkCount_ = 0;
    std::uint32_t flags_ = 0;
    bool openDone_ = false;
};

} // namespace trace
} // namespace csync

#endif // CSYNC_TRACE_WRITER_HH
