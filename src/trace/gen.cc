#include "trace/gen.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "trace/writer.hh"

namespace csync
{
namespace trace
{

namespace
{

/** Lock words: below the 16 MiB class split (synchronization bus). */
constexpr Addr kLockBase = 0x200000;
/** Lock stride: one block per lock on any reasonable block size. */
constexpr Addr kLockStride = 64;
/** Shared data: above the class split (data switch). */
constexpr Addr kSharedBase = 0x2000000;
/** Per-thread private regions. */
constexpr Addr kPrivateBase = 0x30000000;
constexpr Addr kPrivateStride = 0x10000;

Addr
privateWord(unsigned t, std::uint64_t i)
{
    return kPrivateBase + Addr(t) * kPrivateStride +
           Addr(i % 32) * bytesPerWord;
}

/** Per-thread RNG, decorrelated from the other threads. */
Random
threadRng(const GenParams &p, unsigned t)
{
    return Random(p.seed * 1000003 + t * 104729 + 17);
}

/**
 * All threads hammer one spinlock: each iteration thinks, acquires,
 * bounces the guarded counter, and releases — the Sections E.3-E.4
 * contention pattern as a trace (5 events per iteration).
 */
void
genSpinlock(const GenParams &p, TraceWriter &w)
{
    std::uint64_t iters =
        std::max<std::uint64_t>(1, p.events / (p.threads * 5));
    for (unsigned t = 0; t < p.threads; ++t) {
        Random rng = threadRng(p, t);
        for (std::uint64_t i = 0; i < iters; ++i) {
            w.append(t, TraceEvent::compute(rng.range(1, 6)));
            w.append(t, TraceEvent::lock(kLockBase));
            w.append(t, TraceEvent::read(kLockBase + bytesPerWord));
            w.append(t, TraceEvent::write(kLockBase + bytesPerWord));
            w.append(t, TraceEvent::unlock(kLockBase));
        }
    }
}

/**
 * Threads pair up (2k produces for 2k+1) over per-pair data slots;
 * the consumer's Dep events encode the happens-before edge a capture
 * tool would have observed (5 events per item on both sides).  An odd
 * trailing thread runs private traffic.
 */
void
genProducerConsumer(const GenParams &p, TraceWriter &w)
{
    constexpr unsigned kDataWords = 4;
    std::uint64_t items =
        std::max<std::uint64_t>(1, p.events / (p.threads * 5));
    for (unsigned t = 0; t < p.threads; ++t) {
        Random rng = threadRng(p, t);
        if (p.threads % 2 != 0 && t == p.threads - 1) {
            for (std::uint64_t i = 0; i < items; ++i) {
                w.append(t, TraceEvent::compute(rng.range(1, 4)));
                w.append(t, TraceEvent::read(privateWord(t, i)));
                w.append(t, TraceEvent::write(privateWord(t, i)));
                w.append(t, TraceEvent::read(privateWord(t, i + 7)));
                w.append(t, TraceEvent::write(privateWord(t, i + 7)));
            }
            continue;
        }
        unsigned pair = t / 2;
        Addr base = kSharedBase + Addr(pair) * 0x10000;
        for (std::uint64_t i = 0; i < items; ++i) {
            // Items rotate over 8 slots so producer and consumer can
            // run several items apart without clobbering live data.
            Addr slot =
                base + Addr(i % 8) * kDataWords * bytesPerWord;
            if (t % 2 == 0) {
                w.append(t, TraceEvent::compute(rng.range(1, 4)));
                for (unsigned d = 0; d < kDataWords; ++d) {
                    w.append(t, TraceEvent::write(
                                    slot + Addr(d) * bytesPerWord));
                }
            } else {
                // Wait for the producer to finish item i: 5 events
                // per item on its side.
                w.append(t, TraceEvent::dep(t - 1, (i + 1) * 5));
                for (unsigned d = 0; d < kDataWords; ++d) {
                    w.append(t, TraceEvent::read(
                                    slot + Addr(d) * bytesPerWord));
                }
            }
        }
    }
}

/**
 * Barrier phases: each phase every thread works a slice of a shared
 * array (4 read-modify-write word pairs), then meets the others at a
 * phase barrier (10 events per phase).  Lock-free, so it replays on
 * every protocol — including the ones with no lock support at all.
 */
void
genBarrier(const GenParams &p, TraceWriter &w)
{
    std::uint64_t phases =
        std::max<std::uint64_t>(1, p.events / (p.threads * 10));
    for (unsigned t = 0; t < p.threads; ++t) {
        Random rng = threadRng(p, t);
        for (std::uint64_t ph = 0; ph < phases; ++ph) {
            w.append(t, TraceEvent::compute(rng.range(1, 6)));
            for (unsigned k = 0; k < 4; ++k) {
                // Slices rotate across phases, so each word is shared
                // over time but uncontended within a phase.
                Addr a = kSharedBase +
                         Addr((t + ph) % p.threads) * 0x400 +
                         Addr(k) * bytesPerWord;
                w.append(t, TraceEvent::read(a));
                w.append(t, TraceEvent::write(a));
            }
            w.append(t, TraceEvent::barrier(ph, p.threads));
        }
    }
}

/**
 * The full vocabulary in one kernel: every round is exactly 11 events
 * — think, a lock-guarded critical section, shared and private
 * traffic, a dependency on the neighbour's progress, and a round
 * barrier.  The fixed round size makes the Dep targets exact: the
 * neighbour has passed its critical section for round r once it has
 * retired r*11 + 5 events, which every thread reaches before its own
 * Dep (event 10 of the round), so the chain can stall but never
 * deadlock.
 */
void
genMix(const GenParams &p, TraceWriter &w)
{
    constexpr std::uint64_t kRoundEvents = 11;
    std::uint64_t rounds = std::max<std::uint64_t>(
        1, p.events / (p.threads * kRoundEvents));
    for (unsigned t = 0; t < p.threads; ++t) {
        Random rng = threadRng(p, t);
        for (std::uint64_t r = 0; r < rounds; ++r) {
            Addr lock = kLockBase + Addr(r % 4) * kLockStride;
            w.append(t, TraceEvent::compute(rng.range(1, 6)));
            w.append(t, TraceEvent::lock(lock));
            w.append(t, TraceEvent::read(lock + bytesPerWord));
            w.append(t, TraceEvent::write(lock + bytesPerWord));
            w.append(t, TraceEvent::unlock(lock));
            Addr shared = kSharedBase +
                          Addr((t * 97 + r * 13) % 512) * bytesPerWord;
            w.append(t, TraceEvent::read(shared));
            w.append(t, TraceEvent::write(shared));
            w.append(t, TraceEvent::read(privateWord(t, r)));
            w.append(t, TraceEvent::write(privateWord(t, r)));
            w.append(t, TraceEvent::dep((t + 1) % p.threads,
                                        r * kRoundEvents + 5));
            w.append(t, TraceEvent::barrier(r, p.threads));
        }
    }
}

struct Kernel
{
    const char *name;
    void (*gen)(const GenParams &, TraceWriter &);
};

const Kernel kKernels[] = {
    {"barrier", genBarrier},
    {"mix", genMix},
    {"producer_consumer", genProducerConsumer},
    {"spinlock", genSpinlock},
};

} // anonymous namespace

std::vector<std::string>
genKernelNames()
{
    std::vector<std::string> names;
    for (const auto &k : kKernels)
        names.push_back(k.name);
    return names;
}

bool
genKernelKnown(const std::string &kernel)
{
    for (const auto &k : kKernels) {
        if (kernel == k.name)
            return true;
    }
    return false;
}

bool
generateTrace(const GenParams &p, const std::string &path,
              std::string *err)
{
    const Kernel *kernel = nullptr;
    for (const auto &k : kKernels) {
        if (p.kernel == k.name)
            kernel = &k;
    }
    if (!kernel) {
        if (err) {
            std::string known;
            for (const auto &k : kKernels)
                known += std::string(known.empty() ? "" : ", ") + k.name;
            *err = csprintf("unknown trace kernel '%s' (known: %s)",
                            p.kernel.c_str(), known.c_str());
        }
        return false;
    }
    if (p.threads == 0) {
        if (err)
            *err = "a trace needs at least one thread";
        return false;
    }
    TraceWriter w;
    if (!w.open(path, p.threads, p.chunkEvents, err))
        return false;
    kernel->gen(p, w);
    return w.finalize(err);
}

} // namespace trace
} // namespace csync
