#include "trace/writer.hh"

#include "sim/logging.hh"

namespace csync
{
namespace trace
{

namespace
{

std::string
encodeHeader(const TraceHeader &h)
{
    std::string out;
    putU32(out, kMagic);
    putU32(out, h.version);
    putU32(out, h.numThreads);
    putU32(out, h.flags);
    putU64(out, h.totalEvents);
    putU32(out, h.chunkCount);
    putU32(out, 0); // reserved
    return out;
}

} // anonymous namespace

bool
TraceWriter::open(const std::string &path, unsigned num_threads,
                  unsigned chunk_events, std::string *err)
{
    sim_assert(!openDone_, "trace writer opened twice");
    sim_assert(num_threads > 0, "trace needs at least one thread");
    sim_assert(chunk_events > 0, "chunk size must be nonzero");
    out_.open(path, std::ios::in | std::ios::out | std::ios::trunc |
                        std::ios::binary);
    if (!out_) {
        if (err)
            *err = "cannot create trace file '" + path + "'";
        return false;
    }
    path_ = path;
    chunkEvents_ = chunk_events;
    threads_.resize(num_threads);
    // Placeholder header + thread table; finalize() rewrites both.
    std::string prefix = encodeHeader(TraceHeader{});
    for (unsigned t = 0; t < num_threads; ++t) {
        threads_[t].patchPos =
            kHeaderBytes + std::uint64_t(t) * kTableEntryBytes + 8;
        putU64(prefix, 0); // event count
        putU64(prefix, 0); // first chunk offset
    }
    out_.write(prefix.data(), std::streamsize(prefix.size()));
    openDone_ = true;
    return true;
}

void
TraceWriter::append(unsigned thread, const TraceEvent &ev)
{
    sim_assert(openDone_, "append before open");
    sim_assert(thread < threads_.size(), "append to thread %u of %zu",
               thread, threads_.size());
    switch (ev.kind) {
      case EventKind::Lock:
      case EventKind::Unlock:
        flags_ |= kFlagHasLocks;
        break;
      case EventKind::Barrier:
        flags_ |= kFlagHasBarriers;
        break;
      case EventKind::Dep:
        flags_ |= kFlagHasDeps;
        break;
      default:
        break;
    }
    ThreadBuf &tb = threads_[thread];
    encodeEvent(tb.payload, ev);
    ++tb.events;
    ++tb.eventsTotal;
    ++totalEvents_;
    if (tb.events >= chunkEvents_)
        flushChunk(thread);
}

void
TraceWriter::flushChunk(unsigned thread)
{
    ThreadBuf &tb = threads_[thread];
    if (tb.events == 0)
        return;
    out_.seekp(0, std::ios::end);
    std::uint64_t chunk_pos = std::uint64_t(out_.tellp());
    // Link the previous chunk (or the thread-table entry) here.
    std::string link;
    putU64(link, chunk_pos);
    out_.seekp(std::streamoff(tb.patchPos));
    out_.write(link.data(), std::streamsize(link.size()));
    out_.seekp(std::streamoff(chunk_pos));

    std::string hdr;
    putU32(hdr, kChunkMagic);
    putU32(hdr, thread);
    putU32(hdr, tb.events);
    putU32(hdr, std::uint32_t(tb.payload.size()));
    putU64(hdr, 0); // next-chunk link, patched by the next flush
    out_.write(hdr.data(), std::streamsize(hdr.size()));
    out_.write(tb.payload.data(), std::streamsize(tb.payload.size()));

    tb.patchPos = chunk_pos + 16;
    tb.payload.clear();
    tb.events = 0;
    ++chunkCount_;
}

bool
TraceWriter::finalize(std::string *err)
{
    sim_assert(openDone_, "finalize before open");
    for (unsigned t = 0; t < threads_.size(); ++t)
        flushChunk(t);

    TraceHeader h;
    h.version = kVersion;
    h.numThreads = std::uint32_t(threads_.size());
    h.flags = flags_;
    h.totalEvents = totalEvents_;
    h.chunkCount = chunkCount_;
    // Rewrite the header, then each table entry's event count without
    // touching its already-patched chunk offset.
    std::string prefix = encodeHeader(h);
    out_.seekp(0);
    out_.write(prefix.data(), std::streamsize(prefix.size()));
    for (unsigned t = 0; t < threads_.size(); ++t) {
        std::string entry;
        putU64(entry, threads_[t].eventsTotal);
        out_.seekp(std::streamoff(kHeaderBytes +
                                  std::uint64_t(t) * kTableEntryBytes));
        out_.write(entry.data(), std::streamsize(entry.size()));
    }
    out_.flush();
    bool ok = bool(out_);
    out_.close();
    openDone_ = false;
    if (!ok && err)
        *err = "I/O error writing trace file '" + path_ + "'";
    return ok;
}

} // namespace trace
} // namespace csync
