#include "proc/workload.hh"

// Workload is header-only today; this translation unit anchors vtables.

namespace csync
{
} // namespace csync
