#include "proc/workloads/producer_consumer.hh"

#include "sim/logging.hh"

namespace csync
{

Word
producerValue(std::uint64_t item, unsigned w, unsigned rewrite)
{
    return (item + 1) * 1000003ull + w * 101ull + rewrite;
}

NextStatus
ProducerWorkload::next(MemOp &op, Tick &think)
{
    if (item_ >= p_.items)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::WaitReady:
        if (!flagClear_) {
            op = MemOp{OpType::Read, p_.flagAddr, 0, false, true};
            think = p_.spinGap;
            return NextStatus::Op;
        }
        flagClear_ = false;
        phase_ = Phase::WriteData;
        word_ = 0;
        rewrite_ = 0;
        [[fallthrough]];

      case Phase::WriteData:
        op = MemOp{OpType::Write, p_.dataBase + Addr(word_) * bytesPerWord,
                   producerValue(item_, word_, rewrite_), false};
        think = 0;
        if (++rewrite_ >= p_.rewrites) {
            rewrite_ = 0;
            if (++word_ >= p_.dataWords)
                phase_ = Phase::SetFlag;
        }
        return NextStatus::Op;

      case Phase::SetFlag:
        op = MemOp{OpType::Write, p_.flagAddr, item_ + 1, false, true};
        think = p_.computeThink;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
ProducerWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    if (phase_ == Phase::WaitReady && op.type == OpType::Read) {
        flagClear_ = (r.value == 0);
    } else if (phase_ == Phase::SetFlag && op.type == OpType::Write &&
               op.addr == p_.flagAddr) {
        // Only the flag write itself ends the item: the phase advances
        // in next() while the last data write's result is in flight.
        ++item_;
        phase_ = Phase::WaitReady;
    }
}

NextStatus
ConsumerWorkload::next(MemOp &op, Tick &think)
{
    if (item_ >= p_.items)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::WaitFlag:
        if (!flagSet_) {
            op = MemOp{OpType::Read, p_.flagAddr, 0, false, true};
            think = p_.spinGap;
            return NextStatus::Op;
        }
        flagSet_ = false;
        phase_ = Phase::ReadData;
        word_ = 0;
        [[fallthrough]];

      case Phase::ReadData:
        op = MemOp{OpType::Read,
                   p_.dataBase + Addr(word_) * bytesPerWord, 0, false};
        think = 0;
        return NextStatus::Op;

      case Phase::ClearFlag:
        op = MemOp{OpType::Write, p_.flagAddr, 0, false, true};
        think = p_.computeThink;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
ConsumerWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    switch (phase_) {
      case Phase::WaitFlag:
        if (op.type == OpType::Read)
            flagSet_ = (r.value == item_ + 1);
        return;

      case Phase::ReadData:
        if (op.type == OpType::Read) {
            Word expect =
                producerValue(item_, word_, p_.rewrites - 1);
            if (r.value != expect)
                ++valueErrors_;
            if (++word_ >= p_.dataWords)
                phase_ = Phase::ClearFlag;
        }
        return;

      case Phase::ClearFlag:
        if (op.type == OpType::Write) {
            ++item_;
            phase_ = Phase::WaitFlag;
        }
        return;
    }
}

} // namespace csync
