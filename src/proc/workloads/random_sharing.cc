#include "proc/workloads/random_sharing.hh"

#include "sim/logging.hh"

namespace csync
{

RandomSharingWorkload::RandomSharingWorkload(const RandomSharingParams &p)
    : params_(p), rng_(p.seed + p.procId * 7919 + 1)
{
}

NextStatus
RandomSharingWorkload::next(MemOp &op, Tick &think)
{
    if (issued_ >= params_.ops)
        return NextStatus::Finished;
    ++issued_;

    bool shared = rng_.chance(params_.sharedFraction);
    unsigned words_per_block = unsigned(params_.blockBytes / bytesPerWord);
    Addr addr;
    if (shared) {
        Addr block = rng_.uniform(params_.sharedBlocks);
        Addr word = rng_.uniform(words_per_block);
        addr = params_.sharedBase + block * params_.blockBytes +
               word * bytesPerWord;
    } else {
        Addr block = rng_.uniform(params_.privateBlocks);
        Addr word = rng_.uniform(words_per_block);
        addr = params_.privateBase +
               Addr(params_.procId) * params_.privateStride +
               block * params_.blockBytes + word * bytesPerWord;
    }

    double roll = rng_.uniformReal();
    if (roll < params_.rmwFraction && shared) {
        op = MemOp{OpType::Rmw, addr,
                   (Word(params_.procId) << 48) | writeSeq_++, false};
    } else if (roll < params_.rmwFraction + params_.writeFraction) {
        op = MemOp{OpType::Write, addr,
                   (Word(params_.procId) << 48) | writeSeq_++, false};
    } else {
        op = MemOp{OpType::Read, addr, 0,
                   params_.privateHints && !shared};
    }
    think = params_.thinkMax ? rng_.uniform(params_.thinkMax + 1) : 0;
    return NextStatus::Op;
}

void
RandomSharingWorkload::onResult(const MemOp &, const AccessResult &)
{
}

bool
RandomSharingWorkload::footprint(std::vector<AddrRange> *ranges) const
{
    ranges->push_back(AddrRange{
        params_.sharedBase,
        params_.sharedBase + Addr(params_.sharedBlocks) * params_.blockBytes});
    Addr priv = params_.privateBase +
                Addr(params_.procId) * params_.privateStride;
    ranges->push_back(AddrRange{
        priv, priv + Addr(params_.privateBlocks) * params_.blockBytes});
    return true;
}

std::string
RandomSharingWorkload::describe() const
{
    return csprintf("random-sharing(ops=%llu shared=%.2f write=%.2f)",
                    (unsigned long long)params_.ops,
                    params_.sharedFraction, params_.writeFraction);
}

} // namespace csync
