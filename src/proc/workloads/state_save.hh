/**
 * @file
 * Process-switch state-save workload (Feature 9).  At a process switch
 * the outgoing process's registers are written — every word of the state
 * block(s) — into a save area that was last filled on another processor.
 * Without write-without-fetch each save block must be fetched (uselessly:
 * every word is about to be overwritten); with it, a one-cycle claim
 * suffices.  Two or more processors take turns saving to the same area,
 * as the Aquarius system's frequent lightweight-process switching would.
 */

#ifndef CSYNC_PROC_WORKLOADS_STATE_SAVE_HH
#define CSYNC_PROC_WORKLOADS_STATE_SAVE_HH

#include "proc/workload.hh"

namespace csync
{

/** Parameters for StateSaveWorkload. */
struct StateSaveParams
{
    /** Process switches to perform. */
    std::uint64_t switches = 32;
    /** Save-area blocks written per switch. */
    unsigned stateBlocks = 2;
    /** Words per block. */
    unsigned blockWords = 4;
    /** Use the WriteNoFetch claim for the first word of each block. */
    bool useWriteNoFetch = true;
    /** Turn word address. */
    Addr turnAddr = 0x500000;
    /** Save area base. */
    Addr saveBase = 0x500100;
    /** Processors taking turns. */
    unsigned numProcs = 2;
    unsigned procId = 0;
    /** Think cycles between turn polls. */
    Tick spinGap = 3;
};

/** Alternating state saves into a shared save area. */
class StateSaveWorkload : public Workload
{
  public:
    explicit StateSaveWorkload(const StateSaveParams &p) : p_(p) {}

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override;
    bool done() const override { return switch_ >= p_.switches; }

    /** Value saved for word @p w of block @p b on global switch @p n. */
    static Word savedValue(std::uint64_t n, unsigned b, unsigned w);

  private:
    enum class Phase { SpinTurn, Save, PassTurn };

    StateSaveParams p_;
    Phase phase_ = Phase::SpinTurn;
    std::uint64_t switch_ = 0;
    unsigned block_ = 0;
    unsigned word_ = 0;
    bool myTurn_ = false;
    Word turnValue_ = 0;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_STATE_SAVE_HH
