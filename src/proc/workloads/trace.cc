#include "proc/workloads/trace.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace csync
{

std::vector<TraceEntry>
TraceWorkload::parse(std::istream &in)
{
    std::vector<TraceEntry> out;
    std::string line;
    Tick pending_think = 0;
    bool pending_hint = false;
    unsigned line_no = 0;

    auto parse_u64 = [&](const std::string &tok) {
        return std::strtoull(tok.c_str(), nullptr, 0);
    };

    while (std::getline(in, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string kind;
        if (!(ls >> kind) || kind[0] == '#')
            continue;

        if (kind == "T") {
            std::string v;
            if (!(ls >> v))
                fatal("trace line %u: T needs a cycle count", line_no);
            pending_think += parse_u64(v);
            continue;
        }
        if (kind == "P") {
            pending_hint = true;
            continue;
        }

        std::string a, v;
        if (!(ls >> a))
            fatal("trace line %u: missing address", line_no);

        TraceEntry e;
        e.think = pending_think;
        pending_think = 0;
        e.op.addr = parse_u64(a);
        e.op.privateHint = pending_hint;
        pending_hint = false;

        auto need_value = [&]() {
            if (!(ls >> v))
                fatal("trace line %u: missing value", line_no);
            return Word(parse_u64(v));
        };

        if (kind == "R") {
            e.op.type = OpType::Read;
        } else if (kind == "W") {
            e.op.type = OpType::Write;
            e.op.value = need_value();
        } else if (kind == "A") {
            e.op.type = OpType::Rmw;
            e.op.value = need_value();
        } else if (kind == "L") {
            e.op.type = OpType::LockRead;
        } else if (kind == "U") {
            e.op.type = OpType::UnlockWrite;
            e.op.value = need_value();
        } else if (kind == "N") {
            e.op.type = OpType::WriteNoFetch;
            e.op.value = need_value();
        } else {
            fatal("trace line %u: unknown op '%s'", line_no,
                  kind.c_str());
        }
        out.push_back(e);
    }
    return out;
}

NextStatus
TraceWorkload::next(MemOp &op, Tick &think)
{
    if (pos_ >= entries_.size())
        return NextStatus::Finished;
    op = entries_[pos_].op;
    think = entries_[pos_].think;
    ++pos_;
    return NextStatus::Op;
}

void
TraceWorkload::onResult(const MemOp &, const AccessResult &r)
{
    results_.push_back(r);
}

std::string
TraceWorkload::describe() const
{
    return csprintf("trace(%zu ops)", entries_.size());
}

} // namespace csync
