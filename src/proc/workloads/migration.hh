/**
 * @file
 * Process-migration workload — the paper's second "provide the latest
 * version" occasion (Section C.3): one process, migrating between
 * processors, accesses the same writable data on each.  A token word
 * carries the logical process around the ring; the holder restores the
 * process state (reads every word), runs it (rewrites every word), and
 * passes the token on.
 */

#ifndef CSYNC_PROC_WORKLOADS_MIGRATION_HH
#define CSYNC_PROC_WORKLOADS_MIGRATION_HH

#include "proc/workload.hh"

namespace csync
{

/** Parameters for MigrationWorkload. */
struct MigrationParams
{
    /** Rounds each processor executes the process. */
    std::uint64_t rounds = 16;
    /** Words of process state. */
    unsigned stateWords = 8;
    /** Token word address. */
    Addr tokenAddr = 0x400000;
    /** Base of the process state. */
    Addr stateBase = 0x400100;
    /** Number of processors in the ring. */
    unsigned numProcs = 2;
    /** This processor's position. */
    unsigned procId = 0;
    /** Think cycles between token polls. */
    Tick spinGap = 3;
    /** Think cycles of compute while running the process. */
    Tick computeThink = 4;
};

/** Token-ring process migration. */
class MigrationWorkload : public Workload
{
  public:
    explicit MigrationWorkload(const MigrationParams &p) : p_(p) {}

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override;
    bool done() const override { return round_ >= p_.rounds; }

    /** State words whose restored value did not match expectation. */
    std::uint64_t valueErrors() const { return valueErrors_; }

    /** Expected state-word value after @p total_runs executions. */
    static Word stateValue(std::uint64_t total_runs, unsigned w);

  private:
    enum class Phase { SpinToken, Restore, Run, PassToken };

    MigrationParams p_;
    Phase phase_ = Phase::SpinToken;
    std::uint64_t round_ = 0;
    unsigned word_ = 0;
    bool haveToken_ = false;
    Word tokenValue_ = 0;
    std::uint64_t valueErrors_ = 0;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_MIGRATION_HH
