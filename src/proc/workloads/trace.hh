/**
 * @file
 * Trace-replay workload: a fixed list of operations, either built
 * programmatically (directed tests, the figure scenarios) or parsed from
 * a simple text format:
 *
 *     # comment
 *     R <addr>            read
 *     W <addr> <value>    write
 *     A <addr> <value>    atomic swap (RMW)
 *     L <addr>            lock-read
 *     U <addr> <value>    unlock-write
 *     N <addr> <value>    write-no-fetch
 *     T <cycles>          think time before the next op
 *     P                   set the private (unshared) hint on the next op
 *
 * Addresses and values are hex or decimal per strtoull.
 */

#ifndef CSYNC_PROC_WORKLOADS_TRACE_HH
#define CSYNC_PROC_WORKLOADS_TRACE_HH

#include <istream>
#include <string>
#include <vector>

#include "proc/workload.hh"

namespace csync
{

/** One trace entry. */
struct TraceEntry
{
    MemOp op;
    Tick think = 0;
};

/** Fixed-sequence workload. */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(std::vector<TraceEntry> entries)
        : entries_(std::move(entries))
    {}

    /** Parse the text format; fatal on malformed input. */
    static std::vector<TraceEntry> parse(std::istream &in);

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override;
    bool done() const override { return pos_ >= entries_.size(); }

    /** Results observed, in order. */
    const std::vector<AccessResult> &results() const { return results_; }

  private:
    std::vector<TraceEntry> entries_;
    std::size_t pos_ = 0;
    std::vector<AccessResult> results_;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_TRACE_HH
