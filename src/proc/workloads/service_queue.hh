/**
 * @file
 * Service-request queue workload — the paper's second busy-wait scenario
 * (Sections B.1-B.2, E.4): software-implemented queues whose descriptors
 * are guarded by busy-wait locks, with "quite a few processes accessing
 * each queue" generating high contention.
 *
 * The queue is a bounded ring: a descriptor block holds {lock, head,
 * tail}; slot blocks hold the requests.  Producers enqueue request
 * payloads, consumers dequeue and "service" them.  End-to-end FIFO
 * integrity is checkable: dequeued payloads per producer must arrive in
 * increasing sequence order.
 */

#ifndef CSYNC_PROC_WORKLOADS_SERVICE_QUEUE_HH
#define CSYNC_PROC_WORKLOADS_SERVICE_QUEUE_HH

#include <vector>

#include "proc/sync_ops.hh"
#include "proc/workload.hh"
#include "sim/random.hh"

namespace csync
{

/** Shared layout/parameters of one service queue. */
struct ServiceQueueParams
{
    /** Operations (enqueues for producers, dequeues for consumers). */
    std::uint64_t operations = 100;
    /** Ring capacity in slots. */
    unsigned slots = 8;
    /** Lock algorithm guarding the descriptor. */
    LockAlg alg = LockAlg::CacheLock;
    /** Descriptor block base: word0=lock, word1=head, word2=tail. */
    Addr descBase = 0x200000;
    /** Slot array base (one word per slot). */
    Addr slotBase = 0x210000;
    /** Block size in bytes. */
    Addr blockBytes = 32;
    /** Think cycles between queue operations. */
    Tick interOpThink = 12;
    /** Think cycles between spin reads. */
    Tick spinGap = 2;
    /** Processor id (payload tagging). */
    unsigned procId = 0;
    std::uint64_t seed = 1;
};

/** Enqueue or dequeue role. */
enum class QueueRole { Producer, Consumer };

/**
 * One participant hammering the shared service queue.
 */
class ServiceQueueWorkload : public Workload
{
  public:
    ServiceQueueWorkload(const ServiceQueueParams &p, QueueRole role);

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override;
    bool done() const override { return ops_ >= p_.operations; }

    /** Completed queue operations. */
    std::uint64_t completedOps() const { return ops_; }
    /** FIFO-order violations observed by this consumer. */
    std::uint64_t orderErrors() const { return orderErrors_; }
    /** Dequeued payloads (consumer). */
    const std::vector<Word> &received() const { return received_; }

    /** Payload encoding: (producer id << 48) | sequence. */
    static Word payload(unsigned proc_id, std::uint64_t seq);

  private:
    enum class Phase
    {
        Idle,
        Acquiring,
        ReadHead,
        ReadTail,
        SlotAccess,
        WriteIndex,
        Releasing,
    };

    Addr lockAddr() const { return p_.descBase; }
    Addr headAddr() const { return p_.descBase + bytesPerWord; }
    Addr tailAddr() const { return p_.descBase + 2 * bytesPerWord; }
    Addr slotAddr(Word idx) const
    {
        return p_.slotBase + (idx % p_.slots) * p_.blockBytes;
    }

    ServiceQueueParams p_;
    QueueRole role_;
    LockDriver lock_;
    Phase phase_ = Phase::Idle;
    std::uint64_t ops_ = 0;
    std::uint64_t seq_ = 0;
    Word head_ = 0;
    Word tail_ = 0;
    bool queueOpPossible_ = false;
    std::uint64_t orderErrors_ = 0;
    std::vector<Word> received_;
    std::vector<std::uint64_t> lastSeqFrom_;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_SERVICE_QUEUE_HH
