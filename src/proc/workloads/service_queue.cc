#include "proc/workloads/service_queue.hh"

#include "sim/logging.hh"

namespace csync
{

ServiceQueueWorkload::ServiceQueueWorkload(const ServiceQueueParams &p,
                                           QueueRole role)
    : p_(p), role_(role), lock_(p.alg), lastSeqFrom_(64, 0)
{
    sim_assert(p_.slots > 0, "queue needs slots");
}

Word
ServiceQueueWorkload::payload(unsigned proc_id, std::uint64_t seq)
{
    return (Word(proc_id) << 48) | (seq + 1);
}

NextStatus
ServiceQueueWorkload::next(MemOp &op, Tick &think)
{
    // Never finish mid-transaction: the final operation's lock release
    // must still go out (a process must not stop while holding a lock,
    // Section E.3's process-switching concern).
    if (ops_ >= p_.operations && phase_ == Phase::Idle)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::Idle:
        lock_.beginAcquire(lockAddr());
        phase_ = Phase::Acquiring;
        if (lock_.acquireOp(op)) {
            think = p_.interOpThink;
            return NextStatus::Op;
        }
        return NextStatus::WaitForLock;

      case Phase::Acquiring:
        if (!lock_.acquireOp(op))
            return NextStatus::WaitForLock;
        think = (op.type == OpType::Read) ? p_.spinGap : 0;
        return NextStatus::Op;

      case Phase::ReadHead:
        op = MemOp{OpType::Read, headAddr(), 0, false, true};
        think = 0;
        return NextStatus::Op;

      case Phase::ReadTail:
        op = MemOp{OpType::Read, tailAddr(), 0, false, true};
        think = 0;
        return NextStatus::Op;

      case Phase::SlotAccess:
        if (role_ == QueueRole::Producer) {
            op = MemOp{OpType::Write, slotAddr(tail_),
                       payload(p_.procId, seq_), false, true};
        } else {
            op = MemOp{OpType::Read, slotAddr(head_), 0, false, true};
        }
        think = 0;
        return NextStatus::Op;

      case Phase::WriteIndex:
        if (role_ == QueueRole::Producer)
            op = MemOp{OpType::Write, tailAddr(), tail_ + 1, false, true};
        else
            op = MemOp{OpType::Write, headAddr(), head_ + 1, false, true};
        think = 0;
        return NextStatus::Op;

      case Phase::Releasing:
        op = lock_.releaseOp();
        think = 0;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
ServiceQueueWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    switch (phase_) {
      case Phase::Idle:
      case Phase::Acquiring:
        lock_.onResult(op, r);
        if (lock_.held())
            phase_ = Phase::ReadHead;
        return;

      case Phase::ReadHead:
        head_ = r.value;
        phase_ = Phase::ReadTail;
        return;

      case Phase::ReadTail:
        tail_ = r.value;
        if (role_ == QueueRole::Producer)
            queueOpPossible_ = (tail_ - head_) < p_.slots;
        else
            queueOpPossible_ = head_ < tail_;
        phase_ = queueOpPossible_ ? Phase::SlotAccess : Phase::Releasing;
        return;

      case Phase::SlotAccess:
        if (role_ == QueueRole::Consumer) {
            received_.push_back(r.value);
            unsigned from = unsigned(r.value >> 48);
            std::uint64_t seq = r.value & 0xffffffffffffull;
            if (from < lastSeqFrom_.size()) {
                if (seq <= lastSeqFrom_[from])
                    ++orderErrors_;
                lastSeqFrom_[from] = seq;
            }
        }
        phase_ = Phase::WriteIndex;
        return;

      case Phase::WriteIndex:
        if (role_ == QueueRole::Producer)
            ++seq_;
        ++ops_;
        phase_ = Phase::Releasing;
        return;

      case Phase::Releasing:
        lock_.onReleased();
        phase_ = Phase::Idle;
        return;
    }
}

std::string
ServiceQueueWorkload::describe() const
{
    return csprintf("service-queue(%s, %s, ops=%llu)",
                    role_ == QueueRole::Producer ? "producer" : "consumer",
                    lockAlgName(p_.alg),
                    (unsigned long long)p_.operations);
}

} // namespace csync
