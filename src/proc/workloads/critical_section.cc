#include "proc/workloads/critical_section.hh"

#include "sim/logging.hh"

namespace csync
{

CriticalSectionWorkload::CriticalSectionWorkload(
    const CriticalSectionParams &p)
    : p_(p), rng_(p.seed + p.procId * 104729 + 13), lock_(p.alg)
{
    if (p_.dataInLockBlock) {
        sim_assert((p_.wordsPerCs + 1) * bytesPerWord <= p_.blockBytes,
                   "guarded words do not fit in the lock block");
    }
}

Addr
CriticalSectionWorkload::lockWordAddr(const CriticalSectionParams &p,
                                      unsigned lock_idx)
{
    return p.lockBase + Addr(lock_idx) * p.blockBytes;
}

Addr
CriticalSectionWorkload::dataWordAddr(const CriticalSectionParams &p,
                                      unsigned lock_idx, unsigned w)
{
    if (p.dataInLockBlock) {
        // Word 0 is the lock; the guarded data follows in the same block
        // (the atom occupies the whole block, Section D.2).
        return lockWordAddr(p, lock_idx) + Addr(w + 1) * bytesPerWord;
    }
    Addr data_base = p.lockBase + Addr(p.numLocks) * p.blockBytes;
    return data_base + Addr(lock_idx) * p.blockBytes +
           Addr(w) * bytesPerWord;
}

NextStatus
CriticalSectionWorkload::next(MemOp &op, Tick &think)
{
    if (iter_ >= p_.iterations)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::Outside:
        curLock_ = unsigned(rng_.uniform(p_.numLocks));
        lock_.beginAcquire(lockWordAddr(p_, curLock_));
        phase_ = Phase::Acquiring;
        outsidePending_ = true;
        [[fallthrough]];

      case Phase::Acquiring:
        if (!lock_.acquireOp(op)) {
            // The lock request is pending in the busy-wait register:
            // execute the ready section, then go quiet until the
            // interrupt (Section E.4).
            if (readyIssued_ < p_.readySectionOps) {
                Addr base = p_.privateBase +
                            Addr(p_.procId) * 0x10000;
                op = MemOp{OpType::Read,
                           base + Addr(readyIssued_ % 16) * bytesPerWord,
                           0, false};
                ++readyIssued_;
                think = 1;
                return NextStatus::Op;
            }
            return NextStatus::WaitForLock;
        }
        ++acquireOps_;
        think = (op.type == OpType::Read) ? p_.spinGap : 0;
        if (outsidePending_) {
            think += p_.outsideThink;
            outsidePending_ = false;
        }
        return NextStatus::Op;

      case Phase::CsRead:
        op = MemOp{OpType::Read, dataWordAddr(p_, curLock_, word_), 0,
                   false};
        think = p_.holdThink;
        return NextStatus::Op;

      case Phase::CsWrite:
        op = MemOp{OpType::Write, dataWordAddr(p_, curLock_, word_),
                   readValue_ + 1, false};
        think = 0;
        return NextStatus::Op;

      case Phase::Releasing:
        op = lock_.releaseOp();
        think = 0;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
CriticalSectionWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    if (op.addr >= p_.privateBase) {
        // A ready-section op completed.  It can land in ANY phase: the
        // lock interrupt may arrive while a ready op is still in
        // flight, so its result must never be mistaken for a
        // critical-section access.
        ++readyDone_;
        return;
    }
    switch (phase_) {
      case Phase::Acquiring:
        lock_.onResult(op, r);
        if (lock_.held()) {
            phase_ = Phase::CsRead;
            word_ = 0;
            readyIssued_ = 0;
        }
        return;

      case Phase::CsRead:
        readValue_ = r.value;
        phase_ = Phase::CsWrite;
        return;

      case Phase::CsWrite:
        if (++word_ >= p_.wordsPerCs)
            phase_ = Phase::Releasing;
        else
            phase_ = Phase::CsRead;
        return;

      case Phase::Releasing:
        lock_.onReleased();
        ++iter_;
        phase_ = Phase::Outside;
        return;

      case Phase::Outside:
        return;
    }
}

std::string
CriticalSectionWorkload::describe() const
{
    return csprintf("critical-section(%s, iters=%llu, locks=%u)",
                    lockAlgName(p_.alg),
                    (unsigned long long)p_.iterations, p_.numLocks);
}

} // namespace csync
