/**
 * @file
 * Sense-reversing centralized barrier — the other classic busy-wait
 * structure a lightweight-process system like Aquarius needs (Section
 * B.2): arrivals increment a lock-protected counter; the last arrival
 * resets the counter and flips the sense word; everyone else busy-waits
 * on the sense in its cache.  Exercises lock hand-off and broadcast
 * notification together.
 */

#ifndef CSYNC_PROC_WORKLOADS_BARRIER_HH
#define CSYNC_PROC_WORKLOADS_BARRIER_HH

#include "proc/sync_ops.hh"
#include "proc/workload.hh"

namespace csync
{

/** Parameters for BarrierWorkload. */
struct BarrierParams
{
    /** Barrier episodes to run. */
    std::uint64_t rounds = 20;
    /** Participants. */
    unsigned numProcs = 4;
    /** This participant. */
    unsigned procId = 0;
    /** Lock algorithm guarding the arrival counter. */
    LockAlg alg = LockAlg::CacheLock;
    /** Descriptor block: word0 = lock, word1 = count; the sense word
     *  lives in its own block (it is read-shared by every waiter). */
    Addr descBase = 0x700000;
    Addr senseAddr = 0x700100;
    /** Think cycles of "work" before each arrival. */
    Tick workThink = 8;
    /** Think cycles between sense polls. */
    Tick spinGap = 3;
};

/** One barrier participant. */
class BarrierWorkload : public Workload
{
  public:
    explicit BarrierWorkload(const BarrierParams &p)
        : p_(p), lock_(p.alg)
    {}

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override;
    bool done() const override { return round_ >= p_.rounds; }

    /** Rounds completed. */
    std::uint64_t completedRounds() const { return round_; }
    /** True if this participant ever saw the sense run ahead (a
     *  barrier-integrity violation). */
    bool integrityViolated() const { return violated_; }

  private:
    enum class Phase
    {
        Work,
        Acquiring,
        ReadCount,
        WriteCount,
        FlipSense,
        Releasing,
        SpinSense,
    };

    Addr lockAddr() const { return p_.descBase; }
    Addr countAddr() const { return p_.descBase + bytesPerWord; }

    BarrierParams p_;
    LockDriver lock_;
    Phase phase_ = Phase::Work;
    std::uint64_t round_ = 0;
    Word count_ = 0;
    bool lastArrival_ = false;
    bool violated_ = false;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_BARRIER_HH
