/**
 * @file
 * Archibald & Baer-style random sharing workload: a mix of references to
 * a per-processor private region and a global shared region, with a
 * configurable write fraction.  Used by the cross-protocol comparison
 * bench and by the coherence property tests.
 */

#ifndef CSYNC_PROC_WORKLOADS_RANDOM_SHARING_HH
#define CSYNC_PROC_WORKLOADS_RANDOM_SHARING_HH

#include "proc/workload.hh"
#include "sim/random.hh"

namespace csync
{

/** Parameters for RandomSharingWorkload. */
struct RandomSharingParams
{
    /** Total operations to issue. */
    std::uint64_t ops = 10000;
    /** Number of blocks in the shared region. */
    unsigned sharedBlocks = 16;
    /** Number of blocks in this processor's private region. */
    unsigned privateBlocks = 64;
    /** Probability a reference targets the shared region. */
    double sharedFraction = 0.3;
    /** Probability a reference is a write. */
    double writeFraction = 0.3;
    /** Probability a reference is an atomic RMW (requires a protocol
     *  with Feature 6). */
    double rmwFraction = 0.0;
    /** Tag private-region reads with the compiler's unshared hint
     *  (Feature 5 static protocols). */
    bool privateHints = false;
    /** Maximum think time between ops (uniform 0..thinkMax). */
    Tick thinkMax = 4;
    /** Block size in bytes (address arithmetic). */
    Addr blockBytes = 32;
    /** Base address of the shared region. */
    Addr sharedBase = 0x100000;
    /** Base address of the private regions (per-processor stride). */
    Addr privateBase = 0x10000000;
    /** Distance between consecutive processors' private regions. */
    Addr privateStride = 0x100000;
    /** This processor's id (selects the private region). */
    unsigned procId = 0;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/** Random private/shared reference stream. */
class RandomSharingWorkload : public Workload
{
  public:
    explicit RandomSharingWorkload(const RandomSharingParams &p);

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    bool footprint(std::vector<AddrRange> *ranges) const override;
    std::string describe() const override;
    bool done() const override { return issued_ >= params_.ops; }

  private:
    RandomSharingParams params_;
    Random rng_;
    std::uint64_t issued_ = 0;
    std::uint64_t writeSeq_ = 1;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_RANDOM_SHARING_HH
