#include "proc/workloads/migration.hh"

#include "sim/logging.hh"

namespace csync
{

Word
MigrationWorkload::stateValue(std::uint64_t total_runs, unsigned w)
{
    return total_runs * 131ull + w;
}

NextStatus
MigrationWorkload::next(MemOp &op, Tick &think)
{
    if (round_ >= p_.rounds)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::SpinToken:
        if (!haveToken_) {
            op = MemOp{OpType::Read, p_.tokenAddr, 0, false, true};
            think = p_.spinGap;
            return NextStatus::Op;
        }
        haveToken_ = false;
        phase_ = Phase::Restore;
        word_ = 0;
        [[fallthrough]];

      case Phase::Restore:
        op = MemOp{OpType::Read,
                   p_.stateBase + Addr(word_) * bytesPerWord, 0, false};
        think = 0;
        return NextStatus::Op;

      case Phase::Run:
        op = MemOp{OpType::Write,
                   p_.stateBase + Addr(word_) * bytesPerWord,
                   stateValue(tokenValue_ + 1, word_), false};
        think = word_ == 0 ? p_.computeThink : 0;
        return NextStatus::Op;

      case Phase::PassToken:
        op = MemOp{OpType::Write, p_.tokenAddr, tokenValue_ + 1, false, true};
        think = 0;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
MigrationWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    switch (phase_) {
      case Phase::SpinToken:
        if (op.type == OpType::Read) {
            // The token counts completed runs; it is ours when the count
            // lands on our ring position.
            if (r.value % p_.numProcs == p_.procId &&
                r.value / p_.numProcs == round_) {
                haveToken_ = true;
                tokenValue_ = r.value;
            }
        }
        return;

      case Phase::Restore:
        if (r.value != stateValue(tokenValue_, word_) &&
            !(tokenValue_ == 0 && r.value == 0)) {
            ++valueErrors_;
        }
        if (++word_ >= p_.stateWords) {
            phase_ = Phase::Run;
            word_ = 0;
        }
        return;

      case Phase::Run:
        if (++word_ >= p_.stateWords)
            phase_ = Phase::PassToken;
        return;

      case Phase::PassToken:
        ++round_;
        phase_ = Phase::SpinToken;
        return;
    }
}

std::string
MigrationWorkload::describe() const
{
    return csprintf("migration(rounds=%llu, stateWords=%u, procs=%u)",
                    (unsigned long long)p_.rounds, p_.stateWords,
                    p_.numProcs);
}

} // namespace csync
