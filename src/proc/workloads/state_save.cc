#include "proc/workloads/state_save.hh"

#include "sim/logging.hh"

namespace csync
{

Word
StateSaveWorkload::savedValue(std::uint64_t n, unsigned b, unsigned w)
{
    return (n + 1) * 100000ull + b * 100ull + w;
}

NextStatus
StateSaveWorkload::next(MemOp &op, Tick &think)
{
    if (switch_ >= p_.switches)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::SpinTurn:
        if (!myTurn_) {
            op = MemOp{OpType::Read, p_.turnAddr, 0, false, true};
            think = p_.spinGap;
            return NextStatus::Op;
        }
        myTurn_ = false;
        phase_ = Phase::Save;
        block_ = 0;
        word_ = 0;
        [[fallthrough]];

      case Phase::Save: {
        Addr addr = p_.saveBase +
                    Addr(block_) * p_.blockWords * bytesPerWord +
                    Addr(word_) * bytesPerWord;
        Word value = savedValue(turnValue_, block_, word_);
        // The compiler knows every word of the block will be written
        // (Feature 9): the first word of each block may claim the block
        // without fetching it.
        OpType t = (p_.useWriteNoFetch && word_ == 0)
                       ? OpType::WriteNoFetch
                       : OpType::Write;
        op = MemOp{t, addr, value, false};
        think = 0;
        return NextStatus::Op;
      }

      case Phase::PassTurn:
        op = MemOp{OpType::Write, p_.turnAddr, turnValue_ + 1, false, true};
        think = 0;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
StateSaveWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    switch (phase_) {
      case Phase::SpinTurn:
        if (op.type == OpType::Read &&
            r.value % p_.numProcs == p_.procId &&
            r.value / p_.numProcs == switch_) {
            myTurn_ = true;
            turnValue_ = r.value;
        }
        return;

      case Phase::Save:
        if (++word_ >= p_.blockWords) {
            word_ = 0;
            if (++block_ >= p_.stateBlocks)
                phase_ = Phase::PassTurn;
        }
        return;

      case Phase::PassTurn:
        ++switch_;
        phase_ = Phase::SpinTurn;
        return;
    }
}

std::string
StateSaveWorkload::describe() const
{
    return csprintf("state-save(switches=%llu, blocks=%u, wnf=%d)",
                    (unsigned long long)p_.switches, p_.stateBlocks,
                    int(p_.useWriteNoFetch));
}

} // namespace csync
