/**
 * @file
 * Critical-section (lock contention) workload: the busy-wait pattern of
 * Sections E.3-E.4.  Each iteration picks a lock, acquires it with the
 * configured algorithm (test-and-set, test-and-test-and-set, or the
 * paper's cache-lock-state), increments the shared counters guarded by
 * the lock, and releases it.  Mutual exclusion is validated end-to-end:
 * with N processors doing K iterations each, every guarded counter must
 * end at exactly N*K.
 *
 * Following Section D.2, the guarded data lives in the *same block* as
 * the lock by default ("blocks should be devoted to atoms"), which is
 * what makes cache-state locking free: the lock rides the data fetch.
 */

#ifndef CSYNC_PROC_WORKLOADS_CRITICAL_SECTION_HH
#define CSYNC_PROC_WORKLOADS_CRITICAL_SECTION_HH

#include "proc/sync_ops.hh"
#include "proc/workload.hh"
#include "sim/random.hh"

namespace csync
{

/** Parameters for CriticalSectionWorkload. */
struct CriticalSectionParams
{
    /** Critical sections to execute. */
    std::uint64_t iterations = 100;
    /** Number of distinct locks (atoms). */
    unsigned numLocks = 1;
    /** Guarded words incremented per critical section. */
    unsigned wordsPerCs = 2;
    /** Lock algorithm. */
    LockAlg alg = LockAlg::CacheLock;
    /** Base address of the lock blocks (one block per lock). */
    Addr lockBase = 0x200000;
    /** Block size in bytes (lock stride). */
    Addr blockBytes = 32;
    /** Guarded data in the lock's own block (true, Section D.2) or in
     *  separate blocks after the lock region (false). */
    bool dataInLockBlock = true;
    /** Think cycles inside the critical section per word. */
    Tick holdThink = 2;
    /** Think cycles between critical sections. */
    Tick outsideThink = 10;
    /** Think cycles between spin reads (TTAS). */
    Tick spinGap = 2;
    /** Ready-section length: private ops the process can usefully
     *  execute while its lock request waits in the busy-wait register
     *  (Section E.4's "work while waiting"); 0 = stall. */
    unsigned readySectionOps = 0;
    /** Private region for ready-section work. */
    Addr privateBase = 0x30000000;
    /** RNG seed / processor id. */
    std::uint64_t seed = 1;
    unsigned procId = 0;
};

/** Lock-protected increment loop. */
class CriticalSectionWorkload : public Workload
{
  public:
    explicit CriticalSectionWorkload(const CriticalSectionParams &p);

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override;
    bool done() const override { return iter_ >= p_.iterations; }

    /** Completed critical sections. */
    std::uint64_t completed() const { return iter_; }
    /** Cumulative cycles from first acquire op to lock held. */
    std::uint64_t acquireOps() const { return acquireOps_; }
    const LockDriver &lockDriver() const { return lock_; }

    /** Address of guarded word @p w of lock @p lock_idx. */
    static Addr dataWordAddr(const CriticalSectionParams &p,
                             unsigned lock_idx, unsigned w);
    /** Address of the lock word of lock @p lock_idx. */
    static Addr lockWordAddr(const CriticalSectionParams &p,
                             unsigned lock_idx);

  private:
    enum class Phase { Outside, Acquiring, CsRead, CsWrite, Releasing };

    CriticalSectionParams p_;
    Random rng_;
    LockDriver lock_;
    Phase phase_ = Phase::Outside;
    std::uint64_t iter_ = 0;
    unsigned curLock_ = 0;
    unsigned word_ = 0;
    Word readValue_ = 0;
    std::uint64_t acquireOps_ = 0;
    bool outsidePending_ = false;
    unsigned readyIssued_ = 0;
    std::uint64_t readyDone_ = 0;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_CRITICAL_SECTION_HH
