/**
 * @file
 * Producer/consumer workload — the sharing pattern the paper names as
 * typical of Prolog and dataflow (Section B.1): one process produces a
 * value (a variable binding) for another, which reads and uses it, the
 * hand-off synchronized through a flag word.  The consumer spins on the
 * flag in its cache; the flag write is the communication the
 * write-in/write-through analysis of Section D is about.
 */

#ifndef CSYNC_PROC_WORKLOADS_PRODUCER_CONSUMER_HH
#define CSYNC_PROC_WORKLOADS_PRODUCER_CONSUMER_HH

#include "proc/workload.hh"

namespace csync
{

/** Parameters for ProducerConsumerWorkload. */
struct ProducerConsumerParams
{
    /** Items to hand off. */
    std::uint64_t items = 100;
    /** Data words written per item. */
    unsigned dataWords = 4;
    /** How many times each data word is rewritten per item (the
     *  writes-per-tenure knob of the Section D analysis). */
    unsigned rewrites = 1;
    /** Address of the flag word. */
    Addr flagAddr = 0x100000;
    /** Base address of the data words. */
    Addr dataBase = 0x100100;
    /** Think cycles between consecutive spin reads. */
    Tick spinGap = 2;
    /** Think cycles of "compute" per item. */
    Tick computeThink = 8;
};

/** Producer side. */
class ProducerWorkload : public Workload
{
  public:
    explicit ProducerWorkload(const ProducerConsumerParams &p) : p_(p) {}

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override { return "producer"; }
    bool done() const override { return item_ >= p_.items; }

  private:
    enum class Phase { WaitReady, WriteData, SetFlag };

    ProducerConsumerParams p_;
    Phase phase_ = Phase::WaitReady;
    std::uint64_t item_ = 0;
    unsigned word_ = 0;
    unsigned rewrite_ = 0;
    bool flagClear_ = false;
};

/** Consumer side. */
class ConsumerWorkload : public Workload
{
  public:
    explicit ConsumerWorkload(const ProducerConsumerParams &p) : p_(p) {}

    NextStatus next(MemOp &op, Tick &think) override;
    void onResult(const MemOp &op, const AccessResult &r) override;
    std::string describe() const override { return "consumer"; }
    bool done() const override { return item_ >= p_.items; }

    /** Data words that did not match what the producer wrote. */
    std::uint64_t valueErrors() const { return valueErrors_; }

  private:
    enum class Phase { WaitFlag, ReadData, ClearFlag };

    ProducerConsumerParams p_;
    Phase phase_ = Phase::WaitFlag;
    std::uint64_t item_ = 0;
    unsigned word_ = 0;
    bool flagSet_ = false;
    std::uint64_t valueErrors_ = 0;
};

/** Expected value of data word @p w of item @p item after all rewrites. */
Word producerValue(std::uint64_t item, unsigned w, unsigned rewrite);

} // namespace csync

#endif // CSYNC_PROC_WORKLOADS_PRODUCER_CONSUMER_HH
