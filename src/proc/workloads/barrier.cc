#include "proc/workloads/barrier.hh"

#include "sim/logging.hh"

namespace csync
{

NextStatus
BarrierWorkload::next(MemOp &op, Tick &think)
{
    if (round_ >= p_.rounds)
        return NextStatus::Finished;

    switch (phase_) {
      case Phase::Work:
        lock_.beginAcquire(lockAddr());
        phase_ = Phase::Acquiring;
        if (lock_.acquireOp(op)) {
            think = p_.workThink;
            return NextStatus::Op;
        }
        return NextStatus::WaitForLock;

      case Phase::Acquiring:
        if (!lock_.acquireOp(op))
            return NextStatus::WaitForLock;
        think = (op.type == OpType::Read) ? p_.spinGap : 0;
        return NextStatus::Op;

      case Phase::ReadCount:
        op = MemOp{OpType::Read, countAddr(), 0, false, true};
        think = 0;
        return NextStatus::Op;

      case Phase::WriteCount:
        // The last arrival resets the counter for the next episode;
        // everyone else just registers its arrival.
        op = MemOp{OpType::Write, countAddr(),
                   lastArrival_ ? 0 : count_ + 1, false, true};
        think = 0;
        return NextStatus::Op;

      case Phase::FlipSense:
        op = MemOp{OpType::Write, p_.senseAddr, round_ + 1, false, true};
        think = 0;
        return NextStatus::Op;

      case Phase::Releasing:
        op = lock_.releaseOp();
        think = 0;
        return NextStatus::Op;

      case Phase::SpinSense:
        op = MemOp{OpType::Read, p_.senseAddr, 0, false, true};
        think = p_.spinGap;
        return NextStatus::Op;
    }
    panic("unreachable");
}

void
BarrierWorkload::onResult(const MemOp &op, const AccessResult &r)
{
    switch (phase_) {
      case Phase::Work:
      case Phase::Acquiring:
        lock_.onResult(op, r);
        if (lock_.held())
            phase_ = Phase::ReadCount;
        return;

      case Phase::ReadCount:
        count_ = r.value;
        lastArrival_ = (count_ + 1 == p_.numProcs);
        phase_ = Phase::WriteCount;
        return;

      case Phase::WriteCount:
        phase_ = lastArrival_ ? Phase::FlipSense : Phase::Releasing;
        return;

      case Phase::FlipSense:
        phase_ = Phase::Releasing;
        return;

      case Phase::Releasing:
        lock_.onReleased();
        if (lastArrival_) {
            // The releaser has already passed the barrier.
            ++round_;
            phase_ = Phase::Work;
        } else {
            phase_ = Phase::SpinSense;
        }
        return;

      case Phase::SpinSense:
        if (r.value > round_ + 1) {
            // The sense ran a whole episode ahead of us: someone passed
            // two barriers while we were still waiting at this one.
            violated_ = true;
        }
        if (r.value == round_ + 1) {
            ++round_;
            phase_ = Phase::Work;
        }
        return;
    }
}

std::string
BarrierWorkload::describe() const
{
    return csprintf("barrier(%s, rounds=%llu, procs=%u)",
                    lockAlgName(p_.alg),
                    (unsigned long long)p_.rounds, p_.numProcs);
}

} // namespace csync
