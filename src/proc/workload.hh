/**
 * @file
 * Abstract workload: a state machine that feeds one processor a stream
 * of memory operations and reacts to their results (needed for spin
 * loops, lock hand-offs, and producer/consumer protocols).
 */

#ifndef CSYNC_PROC_WORKLOAD_HH
#define CSYNC_PROC_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "proc/mem_op.hh"
#include "sim/types.hh"
#include "system/topology.hh"

namespace csync
{

/** What the workload wants next. */
enum class NextStatus
{
    /** Issue the returned op after the returned think time. */
    Op,
    /** Nothing to do until the pending lock interrupt arrives. */
    WaitForLock,
    /** Nothing runnable now; the workload fires its wake hook when
     *  progress becomes possible (cross-thread dependency stalls). */
    Stalled,
    /** The workload has finished. */
    Finished,
};

/**
 * A per-processor instruction stream.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /**
     * Produce the next operation.
     *
     * @param[out] op The operation to issue.
     * @param[out] think Idle cycles to spend before issuing it.
     */
    virtual NextStatus next(MemOp &op, Tick &think) = 0;

    /** Deliver the result of the op most recently issued. */
    virtual void onResult(const MemOp &op, const AccessResult &r) = 0;

    /** The busy-waited lock was acquired (work-while-waiting mode). */
    virtual void
    onLockAcquired(const MemOp &op, const AccessResult &r)
    {
        onResult(op, r);
    }

    /**
     * Install the hook the workload fires to resume its processor
     * after returning Stalled.  Workloads that never stall (all the
     * synthetic recipes) ignore it.
     */
    virtual void setWakeHook(std::function<void()>) {}

    /**
     * Report the address ranges this workload will ever touch.  Used by
     * the parallel engine's static partition analysis: a simulation may
     * only be sharded when every processor's footprint is confined to a
     * single interconnect domain.  Return false (the default) when the
     * footprint is unknown — the engine then conservatively falls back
     * to the serial path.  Implementations must OVER-approximate: every
     * address next() can ever produce must lie in some returned range.
     */
    virtual bool
    footprint(std::vector<AddrRange> *ranges) const
    {
        (void)ranges;
        return false;
    }

    /** One-line description for logs. */
    virtual std::string describe() const = 0;

    /** True once the workload will issue no more ops. */
    virtual bool done() const = 0;
};

} // namespace csync

#endif // CSYNC_PROC_WORKLOAD_HH
