/**
 * @file
 * A simple blocking in-order processor: it asks its workload for the next
 * memory operation, spends the think time, issues the op to its cache,
 * and repeats when the result arrives.  With work-while-waiting enabled
 * it keeps executing "ready section" ops while a lock request is pending
 * in the busy-wait register (Section E.4).
 */

#ifndef CSYNC_PROC_PROCESSOR_HH
#define CSYNC_PROC_PROCESSOR_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "proc/workload.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "system/topology.hh"

namespace csync
{

/**
 * One processor driving one private cache port per interconnect switch
 * (a single cache on the default single-bus topology).  Each operation
 * is routed to the port whose switch backs its address.
 */
class Processor : public SimObject
{
  public:
    Processor(std::string name, EventQueue *eq, NodeId id, Cache *cache,
              std::unique_ptr<Workload> workload,
              stats::Group *stats_parent);

    Processor(std::string name, EventQueue *eq, NodeId id,
              std::vector<Cache *> caches, const AddressMap *map,
              std::unique_ptr<Workload> workload,
              stats::Group *stats_parent);

    /** Begin executing the workload. */
    void start();

    /** True once the workload has finished and no op is in flight. */
    bool done() const { return finished_ && !opInFlight_; }

    /** Enable work-while-waiting (installs the lock-interrupt handler). */
    void enableWorkWhileWaiting();

    /**
     * Resume a processor whose workload returned Stalled (fired through
     * the workload's wake hook).  Coalesces repeated wakes and defers
     * through the event queue, so it is safe to call from any point of
     * the simulation — including from inside another processor's
     * workload callback.
     */
    void wake();

    /**
     * Pin this processor to interconnect domain @p domain (a sharded
     * parallel run).  From then on, issuing an operation routed to any
     * other domain is a simulator bug — the partition analysis promised
     * the workload's footprint stays home, and a violation would be a
     * cross-thread access, so it panics rather than corrupting state.
     */
    void setHomeDomain(unsigned domain) { homeDomain_ = int(domain); }

    NodeId id() const { return id_; }
    /** The first (on single-bus: the only) cache port. */
    Cache &cache() { return *caches_.front(); }
    /** The cache port that serves @p addr on this topology. */
    Cache &portFor(Addr addr);
    Workload &workload() { return *workload_; }

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar opsCompleted;
    stats::Scalar memStallCycles;
    stats::Scalar thinkCycles;
    stats::Scalar readySectionOps;
    /// @}

  private:
    void scheduleNext();
    void issue(const MemOp &op);
    void onResult(const MemOp &op, const AccessResult &r);
    void onLockInterrupt(const MemOp &op, const AccessResult &r);

    NodeId id_;
    std::vector<Cache *> caches_;
    const AddressMap *map_;
    std::unique_ptr<Workload> workload_;
    bool started_ = false;
    bool finished_ = false;
    bool opInFlight_ = false;
    bool issuePending_ = false;
    bool waitingForLock_ = false;
    bool workWhileWaiting_ = false;
    bool wakePending_ = false;
    Tick issueTick_ = 0;
    /** Pinned interconnect domain (-1 = unpinned, the serial engine). */
    int homeDomain_ = -1;
};

} // namespace csync

#endif // CSYNC_PROC_PROCESSOR_HH
