#include "proc/sync_ops.hh"

#include "sim/logging.hh"

namespace csync
{

const char *
lockAlgName(LockAlg alg)
{
    switch (alg) {
      case LockAlg::TestAndSet: return "test-and-set";
      case LockAlg::TestTestSet: return "test-and-test-and-set";
      case LockAlg::CacheLock: return "cache-lock-state";
      default: return "unknown";
    }
}

void
LockDriver::beginAcquire(Addr lock_addr)
{
    sim_assert(state_ == State::Idle, "acquire while not idle");
    lockAddr_ = lock_addr;
    state_ = State::WantRmw;
}

bool
LockDriver::acquireOp(MemOp &op)
{
    switch (state_) {
      case State::WantRmw:
        if (alg_ == LockAlg::CacheLock) {
            op = MemOp{OpType::LockRead, lockAddr_, 0, false, true};
        } else {
            op = MemOp{OpType::Rmw, lockAddr_, 1, false, true};
            ++rmwAttempts_;
        }
        return true;
      case State::Spinning:
        // Spin reads poll the lock word: synchronization traffic.
        op = MemOp{OpType::Read, lockAddr_, 0, false, true};
        ++spinReads_;
        return true;
      case State::WaitInterrupt:
        return false;
      default:
        panic("acquireOp in unexpected lock state");
    }
}

void
LockDriver::onResult(const MemOp &op, const AccessResult &r)
{
    switch (state_) {
      case State::WantRmw:
        if (alg_ == LockAlg::CacheLock) {
            sim_assert(op.type == OpType::LockRead, "unexpected lock op");
            state_ = r.waiting ? State::WaitInterrupt : State::Held;
            return;
        }
        sim_assert(op.type == OpType::Rmw, "unexpected lock op");
        if (r.value == 0) {
            state_ = State::Held;
        } else {
            // Failed test-and-set: retry policy depends on the
            // algorithm.
            state_ = alg_ == LockAlg::TestTestSet ? State::Spinning
                                                  : State::WantRmw;
        }
        return;

      case State::Spinning:
        sim_assert(op.type == OpType::Read, "unexpected spin op");
        if (r.value == 0)
            state_ = State::WantRmw;
        return;

      case State::WaitInterrupt:
        // The lock interrupt fired: the LockRead completed.
        sim_assert(!r.waiting, "interrupt delivered a waiting result");
        state_ = State::Held;
        return;

      default:
        panic("lock result in unexpected state");
    }
}

MemOp
LockDriver::releaseOp() const
{
    sim_assert(state_ == State::Held, "release while not held");
    if (alg_ == LockAlg::CacheLock)
        return MemOp{OpType::UnlockWrite, lockAddr_, 0, false, true};
    return MemOp{OpType::Write, lockAddr_, 0, false, true};
}

} // namespace csync
