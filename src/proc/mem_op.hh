/**
 * @file
 * The processor-to-cache operation vocabulary.  Besides plain reads and
 * writes it includes the operations the paper's analysis needs:
 *
 *  - Rmw: a processor atomic read-modify-write (swap) instruction
 *    (Feature 6) — how non-lock-state protocols build test-and-set;
 *  - LockRead / UnlockWrite: the paper's lock instruction pair — a read
 *    that locks the block and a write that unlocks it (Section E.3),
 *    signalled to the cache on a dedicated processor line;
 *  - WriteNoFetch: claim-and-write a whole block without fetching it
 *    (Feature 9, saving process state);
 *  - the privateHint bit: the compiler's static declaration that data is
 *    unshared (Feature 5 'S', Yen / Katz).
 */

#ifndef CSYNC_PROC_MEM_OP_HH
#define CSYNC_PROC_MEM_OP_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace csync
{

/** Kinds of processor memory operations. */
enum class OpType : std::uint8_t
{
    Read,
    Write,
    /** Atomic swap: store value, return the old word. */
    Rmw,
    /** Read the word and lock its block (Figure 6). */
    LockRead,
    /** Write the word and unlock its block (Figure 8). */
    UnlockWrite,
    /** Claim the block with write privilege, no fetch (Feature 9);
     *  writes the word. */
    WriteNoFetch,
};

/** Name of an op type. */
const char *opTypeName(OpType t);

/** One memory operation issued by a processor. */
struct MemOp
{
    OpType type = OpType::Read;
    /** Word-aligned target address. */
    Addr addr = 0;
    /** Value to store (Write/Rmw/UnlockWrite/WriteNoFetch). */
    Word value = 0;
    /** Compiler hint: the datum is unshared (Feature 5 static). */
    bool privateHint = false;
    /** The reference is part of a synchronization structure (Section
     *  E.2): it should travel the synchronization system on a
     *  class-split topology.  Lock/unlock ops are implicitly sync. */
    bool sync = false;
};

/** What the cache returns to the processor. */
struct AccessResult
{
    /** Word value (Read/LockRead: the datum; Rmw: the old value). */
    Word value = 0;
    /**
     * LockRead only: the block was locked elsewhere and the cache has
     * armed its busy-wait register; the operation will complete later via
     * the lock interrupt (Figure 7).
     */
    bool waiting = false;
};

} // namespace csync

#endif // CSYNC_PROC_MEM_OP_HH
