/**
 * @file
 * Software lock algorithms used by the workloads — the three contenders
 * of Sections E.3-E.4:
 *
 *  - test-and-set: every attempt is an atomic RMW on the bus (the
 *    "unsuccessful retries" the paper's wait scheme eliminates);
 *  - test-and-test-and-set: spin on a read of the lock word in the local
 *    cache (Censier & Feautrier's "loop on a one in its cache"), retry
 *    the RMW only when the word is seen clear;
 *  - cache-lock-state: the paper's lock instruction — the lock rides the
 *    block fetch and the busy-wait register handles contention.
 */

#ifndef CSYNC_PROC_SYNC_OPS_HH
#define CSYNC_PROC_SYNC_OPS_HH

#include <string>

#include "proc/mem_op.hh"
#include "sim/types.hh"

namespace csync
{

/** Lock algorithm selector. */
enum class LockAlg
{
    TestAndSet,
    TestTestSet,
    CacheLock,
};

/** Human-readable name. */
const char *lockAlgName(LockAlg alg);

/**
 * Drives the acquire/release op sequence of one lock for one processor.
 */
class LockDriver
{
  public:
    explicit LockDriver(LockAlg alg) : alg_(alg) {}

    LockAlg algorithm() const { return alg_; }

    /** Begin acquiring @p lock_addr. */
    void beginAcquire(Addr lock_addr);

    /**
     * Next op toward the acquire.
     * @return false if no op should be issued (waiting for the lock
     *         interrupt under the cache-lock algorithm).
     */
    bool acquireOp(MemOp &op);

    /** Feed the result of an acquire-path op. */
    void onResult(const MemOp &op, const AccessResult &r);

    /** True once the lock is held. */
    bool held() const { return state_ == State::Held; }

    /** True while an acquire is in progress. */
    bool acquiring() const
    {
        return state_ != State::Idle && state_ != State::Held;
    }

    /** The op that releases the lock. */
    MemOp releaseOp() const;

    /** Mark the lock released. */
    void onReleased() { state_ = State::Idle; }

    /** Lock attempts that went to the bus as RMWs. */
    std::uint64_t rmwAttempts() const { return rmwAttempts_; }

    /** Spin reads issued while waiting (test-and-test-and-set). */
    std::uint64_t spinReads() const { return spinReads_; }

  private:
    enum class State
    {
        Idle,
        WantRmw,
        Spinning,
        WaitInterrupt,
        Held,
    };

    LockAlg alg_;
    State state_ = State::Idle;
    Addr lockAddr_ = 0;
    std::uint64_t rmwAttempts_ = 0;
    std::uint64_t spinReads_ = 0;
};

} // namespace csync

#endif // CSYNC_PROC_SYNC_OPS_HH
