#include "proc/mem_op.hh"

namespace csync
{

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Read: return "Read";
      case OpType::Write: return "Write";
      case OpType::Rmw: return "Rmw";
      case OpType::LockRead: return "LockRead";
      case OpType::UnlockWrite: return "UnlockWrite";
      case OpType::WriteNoFetch: return "WriteNoFetch";
      default: return "Unknown";
    }
}

} // namespace csync
