#include "proc/processor.hh"

namespace csync
{

Processor::Processor(std::string name, EventQueue *eq, NodeId id,
                     Cache *cache, std::unique_ptr<Workload> workload,
                     stats::Group *stats_parent)
    : Processor(std::move(name), eq, id, std::vector<Cache *>{cache},
                nullptr, std::move(workload), stats_parent)
{
}

Processor::Processor(std::string name, EventQueue *eq, NodeId id,
                     std::vector<Cache *> caches, const AddressMap *map,
                     std::unique_ptr<Workload> workload,
                     stats::Group *stats_parent)
    : SimObject(std::move(name), eq),
      statsGroup(this->name(), stats_parent),
      opsCompleted(&statsGroup, "opsCompleted", "memory ops completed"),
      memStallCycles(&statsGroup, "memStallCycles",
                     "cycles waiting on the memory system"),
      thinkCycles(&statsGroup, "thinkCycles", "cycles of local compute"),
      readySectionOps(&statsGroup, "readySectionOps",
                      "ops executed while busy-waiting for a lock"),
      id_(id),
      caches_(std::move(caches)),
      map_(map),
      workload_(std::move(workload))
{
    sim_assert(!caches_.empty(), "processor needs a cache");
    for (Cache *c : caches_)
        sim_assert(c != nullptr, "processor needs a cache");
    sim_assert(caches_.size() == 1 || map_ != nullptr,
               "multi-port processor needs an address map");
    sim_assert(workload_ != nullptr, "processor needs a workload");
    workload_->setWakeHook([this] { wake(); });
}

Cache &
Processor::portFor(Addr addr)
{
    if (caches_.size() == 1)
        return *caches_.front();
    std::size_t k = map_->switchFor(addr);
    sim_assert(k < caches_.size(), "address map names a missing port");
    return *caches_[k];
}

void
Processor::start()
{
    sim_assert(!started_, "processor started twice");
    started_ = true;
    scheduleNext();
}

void
Processor::enableWorkWhileWaiting()
{
    workWhileWaiting_ = true;
    // A lock can live behind any port; every port reports interrupts
    // here (at most one lock request is outstanding at a time).
    for (Cache *c : caches_) {
        c->setLockInterruptHandler(
            [this](const MemOp &op, const AccessResult &r) {
                onLockInterrupt(op, r);
            });
    }
}

void
Processor::wake()
{
    if (wakePending_)
        return;
    wakePending_ = true;
    eventq()->scheduleIn(0, [this] {
        wakePending_ = false;
        scheduleNext();
    });
}

void
Processor::scheduleNext()
{
    if (finished_ || opInFlight_ || issuePending_)
        return;

    MemOp op;
    Tick think = 0;
    switch (workload_->next(op, think)) {
      case NextStatus::Finished:
        finished_ = true;
        trace(TraceFlag::Processor, "workload finished");
        return;

      case NextStatus::Stalled:
        // Quiet until the workload's wake hook fires (a cross-thread
        // dependency or barrier elsewhere must make progress first).
        trace(TraceFlag::Processor, "workload stalled");
        return;

      case NextStatus::WaitForLock:
        // Quiet until the lock interrupt (Figure 9): the processor may
        // do whatever it likes; this workload has nothing ready.
        sim_assert(waitingForLock_, "WaitForLock with no lock pending");
        return;

      case NextStatus::Op:
        thinkCycles += double(think);
        issuePending_ = true;
        if (think == 0) {
            issue(op);
        } else {
            eventq()->scheduleIn(think, [this, op] { issue(op); });
        }
        return;
    }
}

void
Processor::issue(const MemOp &op)
{
    sim_assert(!opInFlight_, "issue while op in flight");
    sim_assert(homeDomain_ < 0 ||
                   map_->switchFor(op.addr) == std::size_t(homeDomain_),
               "%s issued %llx outside its home domain %d",
               name().c_str(), (unsigned long long)op.addr, homeDomain_);
    Cache &port = portFor(op.addr);
    if (!port.idle()) {
        // The cache is finishing a busy-waited lock replay; retry.
        eventq()->scheduleIn(1, [this, op] { issue(op); });
        return;
    }
    issuePending_ = false;
    opInFlight_ = true;
    issueTick_ = curTick();
    if (waitingForLock_)
        ++readySectionOps;
    port.access(op, [this, op](const AccessResult &r) {
        onResult(op, r);
    });
}

void
Processor::onResult(const MemOp &op, const AccessResult &r)
{
    opInFlight_ = false;
    memStallCycles += double(curTick() - issueTick_);
    if (r.waiting) {
        // The lock is pending in the busy-wait register; the workload
        // may execute its ready section meanwhile.
        sim_assert(workWhileWaiting_, "waiting result without handler");
        waitingForLock_ = true;
    } else {
        ++opsCompleted;
    }
    workload_->onResult(op, r);
    scheduleNext();
}

void
Processor::onLockInterrupt(const MemOp &op, const AccessResult &r)
{
    sim_assert(waitingForLock_, "lock interrupt while not waiting");
    waitingForLock_ = false;
    ++opsCompleted;
    workload_->onLockAcquired(op, r);
    scheduleNext();
}

} // namespace csync
