#include "fault/faulty_bus.hh"

#include <algorithm>

namespace csync
{

FaultyBus::FaultyBus(std::string name, EventQueue *eq, Memory *memory,
                     const BusTiming &timing, stats::Group *stats_parent,
                     const FaultPlan &plan, unsigned carries,
                     bool class_stats, const std::string &stats_prefix,
                     const std::string &arbitration)
    : Bus(std::move(name), eq, memory, timing, stats_parent, carries,
          class_stats, arbitration),
      faultsGroup(stats_prefix + "faults", stats_parent),
      injected(&faultsGroup, "injected", "bus faults injected"),
      recovered(&faultsGroup, "recovered",
                "injected faults the system recovered from"),
      naks(&faultsGroup, "naks", "arbitration tenures NAK'd"),
      grantDrops(&faultsGroup, "grantDrops",
                 "busy-wait priority grants dropped"),
      stalls(&faultsGroup, "stalls", "no-transaction bus stalls injected"),
      supplyDelays(&faultsGroup, "supplyDelays",
                   "cache-to-cache supplies delayed"),
      retryGroup(stats_prefix + "retry", stats_parent),
      backoffTicks(&retryGroup, "backoffTicks",
                   "ticks requesters spent in post-NAK backoff"),
      plan_(plan),
      kindMask_(plan.kindMask()),
      rng_(plan.seed)
{
    plan_.validate();
}

Tick
FaultyBus::backoffFor(const BusClient *client)
{
    unsigned &streak = nakStreak_[client];
    Tick backoff = plan_.backoffBase;
    for (unsigned i = 0; i < streak && backoff < plan_.backoffCap; ++i)
        backoff *= 2;
    backoff = std::min(backoff, plan_.backoffCap);
    if (streak < 32)
        ++streak;
    return backoff;
}

Tick
FaultyBus::preArbitrationStall()
{
    if (!kindOn(FaultKind::StallBus) || !rng_.chance(plan_.rate))
        return 0;
    // A stall heals by construction once the hold time elapses.
    ++injected;
    ++stalls;
    ++recovered;
    trace(TraceFlag::Bus, "fault: stall bus %llu ticks",
                   (unsigned long long)plan_.stallTicks);
    return plan_.stallTicks;
}

bool
FaultyBus::vetoGrant(BusClient *client, BusPriority pri, TrafficClass cls)
{
    const FaultKind kind = pri == BusPriority::BusyWait
                               ? FaultKind::DropGrant
                               : FaultKind::Nak;
    if (!kindOn(kind) || !rng_.chance(plan_.rate))
        return false;

    ++injected;
    if (kind == FaultKind::DropGrant)
        ++grantDrops;
    else
        ++naks;
    outstanding_[client] = true;

    const Tick backoff = backoffFor(client);
    backoffTicks += double(backoff);
    trace(TraceFlag::Bus, "fault: %s node %d, retry in %llu",
                   faultKindName(kind), client->nodeId(),
                   (unsigned long long)backoff);
    // Re-post the refused request after backoff.  The client may have
    // since withdrawn interest (a busy-wait register that snooped a
    // competing ReadLock); it then simply declines the re-grant.
    eventq()->scheduleIn(backoff, [this, client, pri, cls] {
        request(client, pri, cls);
    });
    return true;
}

Tick
FaultyBus::supplyExtraDelay(const BusMsg &msg, const SnoopResult &res)
{
    (void)msg;
    if (res.supplier == invalidNode)
        return 0;
    if (!kindOn(FaultKind::DelaySupply) || !rng_.chance(plan_.rate))
        return 0;
    // Like a stall, a slow supply heals once the transfer finishes.
    ++injected;
    ++supplyDelays;
    ++recovered;
    trace(TraceFlag::Bus, "fault: delay supply from node %d by %llu ticks",
                   res.supplier,
                   (unsigned long long)plan_.supplyDelayTicks);
    return plan_.supplyDelayTicks;
}

void
FaultyBus::onTransactionComplete(BusClient *client)
{
    auto it = outstanding_.find(client);
    if (it != outstanding_.end() && it->second) {
        it->second = false;
        ++recovered;
    }
    nakStreak_[client] = 0;
}

} // namespace csync
