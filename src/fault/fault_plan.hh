/**
 * @file
 * Deterministic, seed-driven fault scheduling for robustness campaigns.
 * A FaultPlan names which bus-level faults may fire, how often, and with
 * what timing parameters; a FaultyBus draws from a dedicated PRNG seeded
 * by the plan, so a faulty run is exactly as reproducible as a clean one.
 *
 * Every fault is *legal-but-adversarial timing*: a NAK'd arbitration, a
 * stalled bus, a slow cache-to-cache supply, a dropped busy-wait grant.
 * Protocols never see an illegal message — the paper's own recovery
 * mechanics (Synapse's flush-then-refetch retry, the busy-wait register's
 * re-arbitration, lock-waiter states) are what a plan exercises.
 */

#ifndef CSYNC_FAULT_FAULT_PLAN_HH
#define CSYNC_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace csync
{

namespace harness
{
class Json;
} // namespace harness

/** Kinds of injectable bus-level faults. */
enum class FaultKind : unsigned
{
    /** Refuse an arbitration winner's tenure; the requester retries
     *  after a bounded exponential backoff (Table 1 note 1's NAK). */
    Nak = 0,
    /** Hold the bus busy with no transaction for a fixed stall. */
    StallBus,
    /** Delay a source cache's cache-to-cache supply (Figure 4 under a
     *  slow source). */
    DelaySupply,
    /** Drop a busy-wait register's high-priority grant (Section E.4);
     *  the register re-arbitrates after backoff. */
    DropGrant,
    NumKinds
};

/** Canonical spec name of a fault kind ("nak", "stall", ...). */
const char *faultKindName(FaultKind kind);

/** Parse a fault kind name. @return false if @p name is unknown. */
bool faultKindFromName(const std::string &name, FaultKind *out);

/** Comma-separated list of every valid kind name (error messages). */
std::string faultKindList();

/**
 * One system's fault-injection schedule plus its forward-progress
 * watchdog window.  Default-constructed plans inject nothing and leave
 * the statistics tree untouched, so clean runs are byte-identical to
 * builds without the fault layer.
 */
struct FaultPlan
{
    /** Per-opportunity injection probability in [0, 1]; 0 disables. */
    double rate = 0.0;
    /** Seed of the dedicated fault PRNG (independent of workload
     *  seeds, so the same reference stream can be perturbed). */
    std::uint64_t seed = 1;
    /** Enabled kind names; empty means every kind. */
    std::vector<std::string> kinds;

    /** Switch the faults attach to, by topology switch name ("sync_bus");
     *  empty means every switch of the system is decorated.  Validated
     *  against the topology by SystemConfig::validate(). */
    std::string target;

    /** Bus hold time of one injected stall, ticks. */
    Tick stallTicks = 16;
    /** Extra latency of one delayed cache-to-cache supply, ticks. */
    Tick supplyDelayTicks = 8;
    /** First retry backoff after a NAK/dropped grant, ticks. */
    Tick backoffBase = 2;
    /** Backoff ceiling, ticks (bounded exponential doubling). */
    Tick backoffCap = 256;

    /** Forward-progress window: if no processor retires an operation
     *  for this many ticks the run is aborted with a diagnostic
     *  instead of spinning to the tick budget.  0 disables. */
    Tick watchdogWindow = 200'000;

    /** True if any fault can fire. */
    bool enabled() const { return rate > 0.0; }

    /** Bitmask over FaultKind of the kinds this plan may inject.
     *  Unknown names are ignored (validate() rejects them first). */
    unsigned kindMask() const;

    /** Sanity-check the plan (fatal on nonsense, like SystemConfig). */
    void validate() const;

    /**
     * Check the plan without dying: @return false with *err set on the
     * first problem (the sweep expander's up-front gate).
     */
    bool check(std::string *err) const;

    /**
     * Parse per-plan constants from a JSON object (see EXPERIMENTS.md
     * "Fault campaigns").  @return false with *err set on bad input.
     */
    static bool fromJson(const harness::Json &doc, FaultPlan *out,
                         std::string *err);

    /** Echo the plan as JSON (campaign manifest). */
    harness::Json toJson() const;
};

} // namespace csync

#endif // CSYNC_FAULT_FAULT_PLAN_HH
