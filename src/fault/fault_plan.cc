#include "fault/fault_plan.hh"

#include "harness/json.hh"
#include "sim/logging.hh"

namespace csync
{

namespace
{

const char *const kKindNames[unsigned(FaultKind::NumKinds)] = {
    "nak",
    "stall",
    "delay_supply",
    "drop_grant",
};

} // anonymous namespace

const char *
faultKindName(FaultKind kind)
{
    sim_assert(kind < FaultKind::NumKinds, "bad fault kind %u",
               unsigned(kind));
    return kKindNames[unsigned(kind)];
}

bool
faultKindFromName(const std::string &name, FaultKind *out)
{
    for (unsigned i = 0; i < unsigned(FaultKind::NumKinds); ++i) {
        if (name == kKindNames[i]) {
            if (out)
                *out = FaultKind(i);
            return true;
        }
    }
    return false;
}

std::string
faultKindList()
{
    std::string out;
    for (unsigned i = 0; i < unsigned(FaultKind::NumKinds); ++i) {
        if (i)
            out += ", ";
        out += kKindNames[i];
    }
    return out;
}

unsigned
FaultPlan::kindMask() const
{
    if (kinds.empty())
        return (1u << unsigned(FaultKind::NumKinds)) - 1;
    unsigned mask = 0;
    for (const auto &name : kinds) {
        FaultKind k;
        if (faultKindFromName(name, &k))
            mask |= 1u << unsigned(k);
    }
    return mask;
}

bool
FaultPlan::check(std::string *err) const
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };
    if (rate < 0.0 || rate > 1.0)
        return fail(csprintf("fault rate %g is outside [0, 1]", rate));
    for (const auto &name : kinds) {
        if (!faultKindFromName(name, nullptr)) {
            return fail(csprintf("unknown fault kind '%s' (known: %s)",
                                 name.c_str(), faultKindList().c_str()));
        }
    }
    if (enabled()) {
        if (backoffBase == 0)
            return fail("fault backoff base must be nonzero");
        if (backoffCap < backoffBase) {
            return fail(csprintf(
                "fault backoff cap %llu is below the base %llu",
                (unsigned long long)backoffCap,
                (unsigned long long)backoffBase));
        }
        if (stallTicks == 0)
            return fail("fault stall ticks must be nonzero");
        if (supplyDelayTicks == 0)
            return fail("fault supply delay ticks must be nonzero");
    }
    return true;
}

void
FaultPlan::validate() const
{
    std::string err;
    if (!check(&err))
        fatal("%s", err.c_str());
}

bool
FaultPlan::fromJson(const harness::Json &doc, FaultPlan *out,
                    std::string *err)
{
    using harness::Json;
    auto fail = [&](const std::string &what) {
        if (err)
            *err = "fault plan: " + what;
        return false;
    };
    if (!doc.isObject())
        return fail("not a JSON object");

    FaultPlan plan;
    struct TickField
    {
        const char *key;
        Tick *dst;
    };
    const TickField tick_fields[] = {
        {"stall_ticks", &plan.stallTicks},
        {"supply_delay_ticks", &plan.supplyDelayTicks},
        {"backoff_base", &plan.backoffBase},
        {"backoff_cap", &plan.backoffCap},
        {"watchdog_window", &plan.watchdogWindow},
    };
    for (const auto &kv : doc.members()) {
        const std::string &key = kv.first;
        const Json &v = kv.second;
        if (key == "rate") {
            if (!v.isNumber())
                return fail("\"rate\" must be a number");
            plan.rate = v.asNumber();
        } else if (key == "seed") {
            if (!v.isNumber() || v.asNumber() < 0)
                return fail("\"seed\" must be a non-negative number");
            plan.seed = std::uint64_t(v.asNumber());
        } else if (key == "target") {
            if (!v.isString())
                return fail("\"target\" must be a switch name string");
            plan.target = v.asString();
        } else if (key == "kinds") {
            if (!v.isArray())
                return fail("\"kinds\" must be an array of strings");
            plan.kinds.clear();
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (!v.at(i).isString()) {
                    return fail(csprintf("\"kinds\"[%zu] is not a string",
                                         i));
                }
                plan.kinds.push_back(v.at(i).asString());
            }
        } else {
            const TickField *match = nullptr;
            for (const auto &f : tick_fields)
                if (key == f.key)
                    match = &f;
            if (!match)
                return fail(csprintf("unknown key \"%s\"", key.c_str()));
            if (!v.isNumber() || v.asNumber() < 0) {
                return fail(csprintf(
                    "\"%s\" must be a non-negative number", match->key));
            }
            *match->dst = Tick(v.asNumber());
        }
    }
    std::string why;
    if (!plan.check(&why))
        return fail(why);
    *out = std::move(plan);
    return true;
}

harness::Json
FaultPlan::toJson() const
{
    using harness::Json;
    Json doc = Json::object();
    doc.set("rate", rate);
    doc.set("seed", seed);
    Json kind_arr = Json::array();
    for (const auto &k : kinds)
        kind_arr.push(k);
    doc.set("kinds", std::move(kind_arr));
    if (!target.empty())
        doc.set("target", target);
    doc.set("stall_ticks", stallTicks);
    doc.set("supply_delay_ticks", supplyDelayTicks);
    doc.set("backoff_base", backoffBase);
    doc.set("backoff_cap", backoffCap);
    doc.set("watchdog_window", watchdogWindow);
    return doc;
}

} // namespace csync
