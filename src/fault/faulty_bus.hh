/**
 * @file
 * A fault-injecting decorator over the broadcast bus.  FaultyBus *is* a
 * Bus — same arbitration, snooping, data routing and timing — but it
 * overrides the bus's fault hooks to perturb runs with legal-but-
 * adversarial timing drawn from a dedicated PRNG:
 *
 *  - Nak:         refuse an arbitration winner's tenure; the requester
 *                 retries after a bounded exponential backoff.
 *  - StallBus:    hold the bus busy for a fixed stall with no
 *                 transaction (a slow board, an I/O burst).
 *  - DelaySupply: stretch a cache-to-cache supply (Figure 4 with a
 *                 slow source cache).
 *  - DropGrant:   refuse a busy-wait register's high-priority grant
 *                 (Section E.4), forcing it to re-arbitrate.
 *
 * Protocols never observe an illegal message; they see only delay and
 * retry, so every coherence/lock invariant the checker enforces must
 * still hold.  Draws come from the plan's own seed, keeping faulty runs
 * exactly as reproducible as clean ones.
 */

#ifndef CSYNC_FAULT_FAULTY_BUS_HH
#define CSYNC_FAULT_FAULTY_BUS_HH

#include <map>

#include "fault/fault_plan.hh"
#include "mem/bus.hh"
#include "sim/random.hh"

namespace csync
{

/**
 * Bus subclass that injects FaultPlan-scheduled faults at the bus's
 * protected hook points.  Its extra statistics are registered under
 * @p stats_parent only when the plan is enabled, so clean runs keep a
 * byte-identical stats tree.
 */
class FaultyBus : public Bus
{
  public:
    /**
     * @param stats_prefix Prefix for the "faults"/"retry" stat groups —
     *        empty on a single-bus system (keeping historical stat
     *        names); a multi-switch System passes "<switch>." so two
     *        decorated switches never collide.
     */
    FaultyBus(std::string name, EventQueue *eq, Memory *memory,
              const BusTiming &timing, stats::Group *stats_parent,
              const FaultPlan &plan, unsigned carries = kAllTraffic,
              bool class_stats = false,
              const std::string &stats_prefix = "",
              const std::string &arbitration = "round_robin");

    const FaultPlan &plan() const { return plan_; }

    /** @name Statistics */
    /// @{
    stats::Group faultsGroup;
    stats::Scalar injected;
    stats::Scalar recovered;
    stats::Scalar naks;
    stats::Scalar grantDrops;
    stats::Scalar stalls;
    stats::Scalar supplyDelays;
    stats::Group retryGroup;
    stats::Scalar backoffTicks;
    /// @}

  protected:
    Tick preArbitrationStall() override;
    bool vetoGrant(BusClient *client, BusPriority pri,
                   TrafficClass cls) override;
    Tick supplyExtraDelay(const BusMsg &msg,
                          const SnoopResult &res) override;
    void onTransactionComplete(BusClient *client) override;

  private:
    bool kindOn(FaultKind k) const
    {
        return (kindMask_ & (1u << unsigned(k))) != 0;
    }

    /** Bounded exponential backoff for @p client's next retry. */
    Tick backoffFor(const BusClient *client);

    FaultPlan plan_;
    unsigned kindMask_;
    Random rng_;
    /** Consecutive NAKs/drops since the client last completed. */
    std::map<const BusClient *, unsigned> nakStreak_;
    /** Clients with a faulted, not-yet-recovered transaction. */
    std::map<const BusClient *, bool> outstanding_;
};

} // namespace csync

#endif // CSYNC_FAULT_FAULTY_BUS_HH
