#include "fault/watchdog.hh"

namespace csync
{

ProgressWatchdog::ProgressWatchdog(std::string name, Tick window,
                                   stats::Group *stats_parent)
    : statsGroup(std::move(name), stats_parent),
      trips(&statsGroup, "trips", "forward-progress watchdog trips"),
      observations(&statsGroup, "observations",
                   "progress observations taken"),
      window_(window)
{
}

void
ProgressWatchdog::restart(Tick now, double retired)
{
    lastProgressTick_ = now;
    lastRetired_ = retired;
}

bool
ProgressWatchdog::observe(Tick now, double retired)
{
    ++observations;
    if (retired > lastRetired_) {
        lastRetired_ = retired;
        lastProgressTick_ = now;
        return false;
    }
    if (!enabled() || tripped_)
        return false;
    return now - lastProgressTick_ >= window_;
}

void
ProgressWatchdog::trip(const std::string &diagnostic)
{
    if (tripped_)
        return;
    tripped_ = true;
    diagnostic_ = diagnostic;
    ++trips;
}

} // namespace csync
