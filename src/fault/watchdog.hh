/**
 * @file
 * Forward-progress watchdog.  A protocol under injected faults must
 * either recover or be caught — never hang.  The watchdog observes a
 * monotonic global progress counter (total retired processor operations)
 * as the simulation advances; if a whole window of simulated time passes
 * without a single retirement, or the event queue drains with workloads
 * unfinished, the run is aborted and the trip recorded with a
 * diagnostic, which the campaign runner reports as a structured
 * "livelock" row.
 */

#ifndef CSYNC_FAULT_WATCHDOG_HH
#define CSYNC_FAULT_WATCHDOG_HH

#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace csync
{

/**
 * Watches one System's retirement progress.
 *
 * Statistics registration is optional (pass a null parent to keep the
 * stats tree unchanged for clean runs); the trip state and diagnostic
 * are always maintained so even a rate-0 run that deadlocks is caught.
 */
class ProgressWatchdog
{
  public:
    /**
     * @param name Stats group name ("watchdog").
     * @param window Ticks without progress before tripping; 0 disables.
     * @param stats_parent Parent group, or nullptr to keep the
     *                     watchdog's counters out of the stats tree.
     */
    ProgressWatchdog(std::string name, Tick window,
                     stats::Group *stats_parent);

    /** Begin (or restart) a watch at @p now with @p retired ops done. */
    void restart(Tick now, double retired);

    /**
     * Feed one observation.
     * @return true when the no-progress window has expired — the caller
     *         must stop the run and record the trip via trip().
     */
    bool observe(Tick now, double retired);

    /** Record a trip with its @p diagnostic (first trip wins). */
    void trip(const std::string &diagnostic);

    bool tripped() const { return tripped_; }
    const std::string &diagnostic() const { return diagnostic_; }

    bool enabled() const { return window_ > 0; }
    Tick window() const { return window_; }

    /** Tick of the last observed retirement (diagnostics). */
    Tick lastProgressTick() const { return lastProgressTick_; }

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar trips;
    stats::Scalar observations;
    /// @}

  private:
    Tick window_;
    Tick lastProgressTick_ = 0;
    double lastRetired_ = 0;
    bool tripped_ = false;
    std::string diagnostic_;
};

} // namespace csync

#endif // CSYNC_FAULT_WATCHDOG_HH
